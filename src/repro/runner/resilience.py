"""Campaign resilience: retry, quarantine, circuit breaking, crash-safe resume.

The paper wants *automated, unattended* benchmarking (Principles 4-6);
exaCB and the continuous-benchmarking literature add that long campaigns
only stay unattended if they survive partial infrastructure failure.
This module is that survival layer:

* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  *deterministic* jitter, slept on the virtual
  :class:`~repro.faults.FaultClock` (a campaign never sleeps wall-clock
  time, and its backoff schedule is reproducible provenance);
* :func:`is_transient` -- the retry taxonomy: which failures blame the
  infrastructure (scheduler submit errors, build flakes, job timeouts,
  node failures, transient injected faults) and which blame the
  experiment (concretization conflicts, sanity failures, admission
  control) and must never be retried;
* :class:`CircuitBreaker` -- the campaign-wide failure budget behind
  ``repro-bench --max-failures``: once too many cases have failed, the
  rest of the campaign is declined instead of burning allocation;
* :class:`Quarantine` -- a per-case failure ledger (persisted through the
  journal) so a case that keeps failing across resume cycles degrades to
  an immediate FAILED result without sinking its wavefront;
* :class:`CampaignJournal` -- an append-only JSONL journal keyed by a
  stable :func:`case_fingerprint`, written as results land; with
  ``repro-bench --journal PATH --resume`` completed cases are replayed
  from the journal and only failed/interrupted ones re-run.

Every knob here preserves the determinism contract: with transient-only
faults and enough attempts, a retried campaign's perflogs are
byte-identical to a fault-free serial run.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.faults import FaultClock, InjectedFault, unit_hash
from repro.obs.jsonl import JsonlAppender, read_jsonl, write_jsonl_atomic
from repro.pkgmgr.concretizer import ConcretizationError
from repro.pkgmgr.installer import BuildFailure
from repro.runner.sanity import SanityError
from repro.scheduler.base import AdmissionError, SchedulerError

__all__ = [
    "CampaignAborted",
    "CampaignJournal",
    "CircuitBreaker",
    "DurabilityError",
    "DurabilityPolicy",
    "Quarantine",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "benchmark_source_hash",
    "case_fingerprint",
    "check_record_version",
    "content_address",
    "is_transient",
    "make_case_record",
    "result_from_record",
    "run_config_fingerprint",
]

#: record-shape version stamped (as ``"v"``) on journal *meta* records
#: and every fleet-queue/timeline record.  Readers accept any record at
#: or below their own version -- and records with no ``"v"`` at all,
#: which predate versioning -- but refuse records from the future
#: instead of silently misreading a shape they do not understand.
SCHEMA_VERSION = 1


class SchemaVersionError(ValueError):
    """A record written by a newer repro than the one reading it."""

    def __init__(self, path: str, record_version: int):
        super().__init__(
            f"{path}: record schema v{record_version} is newer than this "
            f"repro understands (v{SCHEMA_VERSION}); upgrade before "
            f"reading -- refusing to guess at its shape"
        )
        self.path = path
        self.record_version = record_version


def check_record_version(record: Dict[str, Any], path: str) -> None:
    """Raise :class:`SchemaVersionError` for a future-versioned record.

    Legacy records carry no ``"v"`` key and pass unchallenged -- they
    predate versioning and every reader still understands their shape.
    """
    version = record.get("v", 0)
    if isinstance(version, int) and version > SCHEMA_VERSION:
        raise SchemaVersionError(path, version)


class CampaignAborted(BaseException):
    """A deliberate campaign kill (operator abort / simulated crash).

    Derives from :class:`BaseException` on purpose: the hardening layers
    convert every *unexpected* ``Exception`` into a structured case
    failure, but an abort must cut straight through them -- exactly like
    ``KeyboardInterrupt``.  The executor's ``finally`` blocks still flush
    perflogs and leave the journal consistent, which is what makes
    ``--resume`` after a kill work.
    """


class DurabilityError(CampaignAborted):
    """A durable artifact could not be written and policy says fail-stop.

    A :class:`CampaignAborted` subclass on purpose: storage failure on a
    must-be-durable artifact (the journal under any policy; everything
    under ``--durability strict``) has to cut through the per-case retry
    and hardening layers the same way an operator abort does -- a
    campaign whose provenance cannot be recorded must not keep burning
    allocation.  The message names the artifact and path so the
    operator's first ``repro-fsck`` target is in the diagnostic.
    """

    def __init__(self, artifact: str, path: str, cause: BaseException):
        super().__init__(
            f"durable artifact {artifact!r} failed at {path}: {cause}"
        )
        self.artifact = artifact
        self.path = path
        self.cause = cause


class DurabilityPolicy:
    """What happens when a durable artifact's I/O fails (DESIGN.md §6.6).

    ``strict`` (the default): every artifact failure is fail-stop -- the
    campaign aborts with a :class:`DurabilityError` naming the artifact.
    ``degrade``: *optional* artifacts (result store, ingest cache,
    trace) demote to their uncached/untraced execution path and the
    campaign carries on, counting each demotion; the journal and the
    perflogs themselves remain fail-stop under either policy, because a
    campaign that cannot record results has nothing to degrade *to*.
    """

    MODES = ("strict", "degrade")

    def __init__(self, mode: str = "strict"):
        if mode not in self.MODES:
            raise ValueError(
                f"unknown durability mode {mode!r}; known: "
                f"{', '.join(self.MODES)}"
            )
        self.mode = mode
        #: artifact label -> demotion count (feeds ``io.degraded.*``)
        self.degraded: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    def absorb(self, artifact: str, path: str, exc: BaseException) -> None:
        """Record a failed optional-artifact write, or abort under strict.

        Raises :class:`DurabilityError` in strict mode; in degrade mode
        counts the demotion and returns, leaving the caller to disable
        the artifact and continue.
        """
        if self.strict:
            raise DurabilityError(artifact, path, exc) from exc
        with self._lock:
            self.degraded[artifact] = self.degraded.get(artifact, 0) + 1

    @property
    def total_degraded(self) -> int:
        with self._lock:
            return sum(self.degraded.values())

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.degraded)


# --------------------------------------------------------------------------
# retry taxonomy
# --------------------------------------------------------------------------

#: exception families whose failures are worth retrying (infrastructure)
TRANSIENT_TYPES = (SchedulerError, BuildFailure, OSError)

#: exception families that no retry can fix (experiment/configuration);
#: checked *before* TRANSIENT_TYPES so subclasses override
PERMANENT_TYPES = (AdmissionError, ConcretizationError, SanityError,
                   ValueError, KeyError, TypeError)


def is_transient(exc: BaseException) -> bool:
    """Whether retrying the failed stage could plausibly succeed.

    The taxonomy (DESIGN.md section 6): injected faults carry their own
    transience; admission control, concretization conflicts and sanity
    errors are permanent; scheduler errors, build failures and I/O errors
    are transient.  Anything unknown is treated as permanent -- an
    unattended campaign must not burn its allocation retrying a bug.
    """
    if isinstance(exc, InjectedFault):
        return exc.transient
    if isinstance(exc, PERMANENT_TYPES):
        return False
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-stage retry with deterministic exponential backoff.

    ``backoff(attempt, key)`` returns
    ``min(base * factor**(attempt-1), max) * (1 + jitter * u)`` where
    ``u`` is a deterministic draw in [-1, 1) from ``(seed, key,
    attempt)`` -- the same case backs off identically in every run and
    under every execution policy, so the recorded backoff schedule is
    itself reproducible provenance.
    """

    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @classmethod
    def single(cls) -> "RetryPolicy":
        """No retries: one attempt, the historical run_case behaviour."""
        return cls(max_attempts=1)

    def backoff(self, attempt: int, key: str = "") -> float:
        """Seconds of (virtual) backoff after failed attempt *attempt*."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        spread = 2.0 * unit_hash(self.seed, "backoff", key, str(attempt)) - 1.0
        return raw * (1.0 + self.jitter * spread)

    def schedule(self, key: str = "") -> List[float]:
        """The full backoff schedule this policy would sleep for *key*."""
        return [self.backoff(a, key) for a in range(1, self.max_attempts)]


# --------------------------------------------------------------------------
# circuit breaker & quarantine
# --------------------------------------------------------------------------

class CircuitBreaker:
    """Campaign-wide failure budget (``--max-failures``).

    Failures are recorded by the executor in deterministic result order
    (the same order the serial policy produces), so whether -- and where
    -- the breaker trips is identical under serial and async execution.
    Once open, remaining cases are declined with a structured failure
    instead of being run.
    """

    def __init__(self, max_failures: Optional[int] = None):
        if max_failures is not None and max_failures < 1:
            raise ValueError("max_failures must be >= 1 (or None)")
        self.max_failures = max_failures
        self._failures = 0
        self._lock = threading.Lock()

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    @property
    def tripped(self) -> bool:
        if self.max_failures is None:
            return False
        with self._lock:
            return self._failures >= self.max_failures

    def describe(self) -> str:
        return (
            f"circuit breaker open: {self.failures} case failure(s) "
            f">= --max-failures={self.max_failures}"
        )


class Quarantine:
    """Per-case failure ledger: repeatedly failing cases stop running.

    Counts are keyed by :func:`case_fingerprint` and seeded from the
    journal on ``--resume``, so a case that has already failed (retries
    included) in ``threshold`` earlier campaigns degrades straight to a
    FAILED result -- its wavefront, and the rest of the campaign, keep
    going.  ``threshold=None`` disables quarantine.
    """

    def __init__(self, threshold: Optional[int] = 3):
        if threshold is not None and threshold < 1:
            raise ValueError("quarantine threshold must be >= 1 (or None)")
        self.threshold = threshold
        self._failures: Dict[str, int] = {}
        self._lock = threading.Lock()

    def seed(self, counts: Dict[str, int]) -> None:
        with self._lock:
            for fingerprint, count in counts.items():
                self._failures[fingerprint] = max(
                    self._failures.get(fingerprint, 0), int(count)
                )

    def record_failure(self, fingerprint: str) -> int:
        with self._lock:
            count = self._failures.get(fingerprint, 0) + 1
            self._failures[fingerprint] = count
            return count

    def failures(self, fingerprint: str) -> int:
        with self._lock:
            return self._failures.get(fingerprint, 0)

    def is_quarantined(self, fingerprint: str) -> bool:
        if self.threshold is None:
            return False
        with self._lock:
            return self._failures.get(fingerprint, 0) >= self.threshold


# --------------------------------------------------------------------------
# fingerprints & the campaign journal
# --------------------------------------------------------------------------

def case_fingerprint(case: Any) -> str:
    """A stable identity for one (test, platform, environment) case.

    Built from declarative case coordinates only -- never from runtime
    state -- so the same campaign expansion yields the same fingerprints
    across processes, which is what lets a resumed run match journal
    records written before a crash.

    Memoized on the case object (same idiom as ``TestCase.display_name``):
    the coordinates are fixed at expansion time and the runner asks for
    the fingerprint more than once per case (journal + result store).
    """
    cache = getattr(case, "__dict__", None)
    if cache is not None:
        cached = cache.get("_fingerprint")
        if cached is not None:
            return cached
    parts = [
        case.test.name,
        case.platform,
        case.environ_name,
        str(case.test.num_tasks),
        str(getattr(case.test, "spack_spec", "") or ""),
    ]
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()
    fingerprint = digest[:16]
    if cache is not None:
        cache["_fingerprint"] = fingerprint
    return fingerprint


#: source-hash memo: a campaign hashes each benchmark class once, not
#: once per case (the sweep benches expand thousands of cases per class)
_SOURCE_HASH_CACHE: Dict[type, str] = {}

#: JSON-able class attributes folded into the source hash.  Factory-made
#: classes (the sweep benches build them with ``type()``/``setattr``)
#: share their ``inspect.getsource`` text, so a behaviour-bearing class
#: attribute is the only place an "edit" can show up.
_PLAIN_ATTR_TYPES = (str, int, float, bool, type(None), list, tuple, dict)


def benchmark_source_hash(cls: type) -> str:
    """Content hash of a benchmark class's *behaviour*.

    Walks the MRO (``object`` excluded) hashing each class's source text
    -- so editing a test, or the framework base class it inherits, both
    invalidate -- plus every plain-data class attribute, which is where
    dynamically built classes (``type(...)`` factories, ``setattr``
    edits) carry behaviour that ``inspect.getsource`` cannot see.
    Classes without retrievable source (REPL, exec) hash a stable
    placeholder; their data attributes still participate.
    """
    cached = _SOURCE_HASH_CACHE.get(cls)
    if cached is not None:
        return cached
    parts: List[str] = [f"{cls.__module__}.{cls.__qualname__}"]
    for klass in cls.__mro__:
        if klass is object:
            continue
        try:
            parts.append(inspect.getsource(klass))
        except (OSError, TypeError):
            parts.append(f"<no-source:{klass.__module__}.{klass.__qualname__}>")
        for name, value in sorted(vars(klass).items()):
            if name.startswith("__"):
                continue
            if isinstance(value, _PLAIN_ATTR_TYPES):
                parts.append(f"{klass.__qualname__}.{name}={value!r}")
    digest = _sha_text("\x1f".join(parts))
    _SOURCE_HASH_CACHE[cls] = digest
    return digest


def _sha_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_config_fingerprint(
    retry: Optional["RetryPolicy"] = None,
    faults: Any = None,
    watchdog_spec: Any = None,
    speculation: Any = None,
    drain_after: Optional[int] = None,
) -> str:
    """Content hash of the run configuration that shapes case *results*.

    Everything here can change what a case's stored result would have
    been -- retry budget/backoff seed, the fault plan and its seed, the
    watchdog's deadlines, speculation's straggler threshold, the drain
    threshold -- so a change to any of them must invalidate the result
    store (the ``case_fingerprint`` blind spot this PR closes).

    Deliberately *excluded*: execution policy, worker count, journal /
    trace / perflog batching.  Those choose *how* the campaign runs, not
    what its artifacts contain -- the byte-identity contract across
    serial/async/procs is exactly why they must not invalidate.
    """
    doc: Dict[str, Any] = {
        "retry": (
            {
                "max_attempts": retry.max_attempts,
                "backoff_base": retry.backoff_base,
                "backoff_factor": retry.backoff_factor,
                "backoff_max": retry.backoff_max,
                "jitter": retry.jitter,
                "seed": retry.seed,
            }
            if retry is not None else None
        ),
        "faults": (
            {"spec": faults.format(), "seed": faults.seed}
            if faults is not None else None
        ),
        "watchdog": (
            watchdog_spec.format() if watchdog_spec is not None else None
        ),
        "speculation": (
            {"straggler_factor": speculation.straggler_factor}
            if speculation is not None else None
        ),
        "drain_after": drain_after,
    }
    return _sha_text(json.dumps(doc, sort_keys=True))


def content_address(
    case: Any,
    *,
    spec_key: str = "",
    system_key: str = "",
    source_key: str = "",
    config_key: str = "",
) -> str:
    """The full content address of one case's *result* (the store key).

    Extends :func:`case_fingerprint` (which only identifies the case)
    into a key that identifies the case's **outcome**.  Invalidation
    rules -- a warm run re-executes a case iff any component changed:

    ==================  ====================================================
    component           invalidated by
    ==================  ====================================================
    case coordinates    test/variant name, platform, environment, task
                        layout (``num_tasks``/``per_node``), ``time_limit``,
                        executable + options, account/QoS overrides
    ``spec_key``        the concretization *problem* hash from
                        ``ConcretizationCache.key_for`` (abstract spec,
                        package-environment fingerprint, repo inventory)
    ``system_key``      ``SystemConfig.fingerprint()``: partition layout,
                        scheduler/launcher, node hardware, environments,
                        account/QoS requirements and defaults
    ``source_key``      :func:`benchmark_source_hash` of the test class
    ``config_key``      :func:`run_config_fingerprint`: retry policy,
                        fault plan + seed, watchdog, speculation, draining
    ==================  ====================================================

    All components are hashed through sorted-key JSON -- never Python
    ``hash()`` -- so the key is stable across process restarts, dict
    insertion orders and execution policies (hypothesis-tested in
    ``tests/runner/test_resultstore.py``).
    """
    test = case.test
    blob = json.dumps(
        {
            "case": {
                "test": test.name,
                "platform": case.platform,
                "environ": case.environ_name,
                "num_tasks": test.num_tasks,
                "num_tasks_per_node": test.num_tasks_per_node,
                "time_limit": test.time_limit,
                "executable": getattr(test, "executable", ""),
                "executable_opts": list(
                    getattr(test, "executable_opts", ()) or ()
                ),
                "account": case.account,
                "qos": case.qos,
            },
            "spec": spec_key,
            "system": system_key,
            "source": source_key,
            "config": config_key,
        },
        sort_keys=True,
    )
    return _sha_text(blob)


#: journal statuses that mean "do not re-run this case on --resume"
COMPLETED_STATUSES = ("passed", "skipped")


def _status_of(result: Any) -> str:
    if result.passed:
        return "passed"
    if result.skipped:
        return "skipped"
    return "failed"


def make_case_record(
    result: Any,
    fingerprint: Optional[str] = None,
    failures: Optional[int] = None,
) -> Dict[str, Any]:
    """The journal-record dict for one result (no journal required).

    Shared by :meth:`CampaignJournal.make_record` and the result store
    (:mod:`repro.runner.results`), which persists the same shape inside
    each cache entry so a replayed case rebuilds its
    :class:`~repro.runner.pipeline.CaseResult` through the exact
    ``result_from_record`` path ``--resume`` already exercises.
    """
    fingerprint = fingerprint or case_fingerprint(result.case)
    return {
        "fingerprint": fingerprint,
        "case": result.case.display_name,
        "test": result.case.test.name,
        "platform": result.case.platform,
        "environ": result.case.environ_name,
        "status": _status_of(result),
        "failing_stage": result.failing_stage,
        "failure_reason": result.failure_reason,
        "attempts": result.attempts,
        "backoff_schedule": list(result.backoff_schedule),
        "faults": list(result.fault_log),
        "quarantined": result.quarantined,
        "failures": (
            failures if failures is not None
            else (0 if result.passed else 1)
        ),
        "perfvars": {
            var: [value, unit]
            for var, (value, unit) in sorted(result.perfvars.items())
        },
        "build_seconds": result.build_seconds,
        "job_seconds": result.job_seconds,
        "queue_seconds": result.queue_seconds,
        "speculated": result.speculated,
        "speculation_won": result.speculation_won,
        "hung_attempts": result.hung_attempts,
        # energy provenance (satellite: a resumed campaign must not
        # lose the joules its crashed predecessor measured)
        "energy": (
            result.energy.as_dict()
            if getattr(result, "energy", None) is not None else None
        ),
    }


class CampaignJournal:
    """Append-only JSONL campaign journal (crash-safe resume).

    One JSON object per line, one line per finished case, appended (and
    fsynced) the moment the result lands -- after its perflog rows were
    flushed, so a journal entry implies durable perflog data.  The
    durability machinery (single-write appends, fsync, torn-tail
    tolerance, atomic rewrites) lives in :mod:`repro.obs.jsonl` and is
    shared with the span trace file, so both artifacts survive a crash
    the same way -- and a post-crash ``--resume`` can append after a
    torn tail without gluing two records together (the appender repairs
    the tail before its first write).
    """

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self.sync = sync
        self._appender = JsonlAppender(path, sync=sync)
        self._lock = threading.Lock()
        # compact() fast path: a journal this session created from
        # scratch, where no fingerprint was appended twice (in either
        # the case or the replay keyspace) and at most one health
        # snapshot was written, is compact by construction -- the
        # end-of-campaign compact() can skip re-parsing every line
        try:
            self._preexisting = os.path.getsize(path) > 0
        except OSError:
            self._preexisting = False
        self._seen_case_fps: set = set()
        self._seen_replay_fps: set = set()
        self._session_health = 0
        self._session_compact = True

    def attach_io(self, io: Any, label: str = "journal") -> None:
        """Route journal appends through a :class:`FaultyIO` shim."""
        self._appender.attach_io(io, label)

    # -- writing -------------------------------------------------------------
    def record(
        self,
        result: Any,
        fingerprint: Optional[str] = None,
        failures: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Append one case result; returns the record written."""
        record = self.make_record(result, fingerprint=fingerprint,
                                  failures=failures)
        self._append(record)
        return record

    def make_record(
        self,
        result: Any,
        fingerprint: Optional[str] = None,
        failures: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Build (without writing) the journal record for one result.

        Group-commit support: the executor's ``journal_batch`` mode
        formats records as results arrive and appends a whole batch in
        one fsynced write via :meth:`record_many` -- the on-disk byte
        sequence is identical to per-case appends.
        """
        return make_case_record(result, fingerprint=fingerprint,
                                failures=failures)

    def record_many(self, records: List[Dict[str, Any]]) -> None:
        """Append a batch of prebuilt records in one durable write."""
        if not records:
            return
        with self._lock:
            for record in records:
                self._track_locked(record)
            self._appender.append_many(records)

    def _track_locked(self, record: Dict[str, Any]) -> None:
        """Maintain the compact-by-construction invariant (see compact)."""
        if not self._session_compact:
            return
        kind = record.get("kind")
        if kind == "health":
            self._session_health += 1
            if self._session_health > 1:
                self._session_compact = False
        elif kind == "replay" and "fingerprint" in record:
            fp = record["fingerprint"]
            if fp in self._seen_replay_fps:
                self._session_compact = False
            else:
                self._seen_replay_fps.add(fp)
        elif kind is None and "fingerprint" in record:
            fp = record["fingerprint"]
            if fp in self._seen_case_fps:
                self._session_compact = False
            else:
                self._seen_case_fps.add(fp)
        # unknown shapes are always preserved by compact(): no effect

    def make_replay_record(
        self,
        result: Any,
        key: str,
        cached_from: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Build a ``kind='replay'`` meta record for a store-replayed case.

        Replayed cases must not journal as ordinary case records: a later
        ``--resume`` would then double-count them (their perflog rows
        were re-emitted by the replay, not by a run this journal
        describes), and ``failure_counts`` would re-learn old failures.
        The meta record still carries the fingerprint and outcome so
        ``repro-trace``/auditors can reconcile the store's hit counters
        against the journal.
        """
        return {
            "kind": "replay",
            "v": SCHEMA_VERSION,
            "fingerprint": fingerprint or case_fingerprint(result.case),
            "case": result.case.display_name,
            "status": _status_of(result),
            "key": key,
            "cached_from": cached_from,
        }

    def record_replay(
        self,
        result: Any,
        key: str,
        cached_from: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append one store-replay meta record; returns it."""
        record = self.make_replay_record(
            result, key, cached_from=cached_from, fingerprint=fingerprint
        )
        self._append(record)
        return record

    def record_health(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Append a node-health snapshot (``kind='health'`` meta record).

        Written whenever the tracker changed since the last journal
        write, so a resumed campaign restores the drain/score state the
        crashed one had accumulated.  Case-record readers
        (:meth:`load`, :meth:`failure_counts`) skip meta records; the
        *last* health record wins on restore.
        """
        record = {"kind": "health", "v": SCHEMA_VERSION, "health": snapshot}
        self._append(record)
        return record

    def _append(self, record: Dict[str, Any]) -> None:
        # the journal-level lock additionally serializes appends against
        # compact(): an append never races the atomic rewrite
        with self._lock:
            self._track_locked(record)
            self._appender.append(record)

    # -- reading -------------------------------------------------------------
    def entries(self) -> Iterable[Dict[str, Any]]:
        """Every intact record, oldest first (torn tail skipped)."""
        return self._entries_unlocked()

    def _entries_unlocked(self) -> List[Dict[str, Any]]:
        records = read_jsonl(self.path)
        for record in records:
            # a v2 meta record would be *silently misread* by the v1
            # shape accessors below; refusing up front is the contract
            check_record_version(record, self.path)
        return records

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Latest case record per fingerprint (the resume state)."""
        state: Dict[str, Dict[str, Any]] = {}
        for record in self.entries():
            fingerprint = record.get("fingerprint")
            if fingerprint is None or "kind" in record:
                continue  # meta record (health snapshot, store replay...)
            state[fingerprint] = record
        return state

    def failure_counts(self) -> Dict[str, int]:
        """Cumulative failure count per fingerprint (quarantine seed).

        Meta records are skipped: a ``kind='replay'`` line describes a
        *stored* outcome being served again, not a fresh failure -- the
        cold run that produced it already journaled the case record.
        """
        counts: Dict[str, int] = {}
        for record in self.entries():
            if (record.get("status") == "failed"
                    and "fingerprint" in record and "kind" not in record):
                counts[record["fingerprint"]] = max(
                    counts.get(record["fingerprint"], 0),
                    int(record.get("failures", 1)),
                )
        return counts

    def health_snapshot(self) -> Optional[Dict[str, Any]]:
        """The latest node-health snapshot, if any was journaled."""
        latest: Optional[Dict[str, Any]] = None
        for record in self.entries():
            if record.get("kind") == "health":
                latest = record.get("health")
        return latest

    # -- maintenance ---------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal keeping only the *latest* record per key.

        An append-only journal grows without bound across retries and
        resume cycles (every re-run of a case appends another line).
        Compaction keeps the last case record per fingerprint -- exactly
        what :meth:`load` would reconstruct -- plus the last health
        snapshot, preserving their relative order, and replaces the file
        atomically (write temp + fsync + rename), so a crash mid-compact
        leaves either the old journal or the new one, never a torn mix.
        The executor runs this automatically when a campaign completes
        successfully.  Returns the number of records dropped.
        """
        with self._lock:
            if not self._preexisting and self._session_compact:
                # every record this journal holds was appended by this
                # session, each unique in its keyspace: compact would
                # keep all of them -- skip the full re-parse
                return 0
            records = list(self._entries_unlocked())
            keep_index: Dict[str, int] = {}
            # store replays compact in their own keyspace: the latest
            # replay record per fingerprint survives alongside the
            # latest case record (a case can have both -- cold run, then
            # a warm replay -- and each tells a different story)
            replay_index: Dict[str, int] = {}
            last_health = -1
            # unknown record shapes are preserved: compaction must never
            # destroy data a newer writer understood and we do not
            unknown: List[int] = []
            for i, record in enumerate(records):
                kind = record.get("kind")
                if kind == "health":
                    last_health = i
                elif kind == "replay" and "fingerprint" in record:
                    replay_index[record["fingerprint"]] = i
                elif kind is None and "fingerprint" in record:
                    keep_index[record["fingerprint"]] = i
                else:
                    unknown.append(i)
            keep = set(keep_index.values())
            keep.update(replay_index.values())
            if last_health >= 0:
                keep.add(last_health)
            keep.update(unknown)
            kept = [records[i] for i in sorted(keep)]
            dropped = len(records) - len(kept)
            if dropped <= 0:
                return 0
            write_jsonl_atomic(self.path, kept, sync=self.sync)
            return dropped


JournalLike = Union[str, CampaignJournal]


def as_journal(journal: Optional[JournalLike]) -> Optional[CampaignJournal]:
    if journal is None or isinstance(journal, CampaignJournal):
        return journal
    return CampaignJournal(str(journal))


def result_from_record(case: Any, record: Dict[str, Any],
                       resumed: bool = True) -> Any:
    """Reconstruct a completed CaseResult from its journal record.

    Used by ``--resume``: the case is *not* re-run; the replayed result
    is marked ``resumed=True`` so the executor neither re-emits its
    perflog rows nor re-journals it, and provenance shows exactly which
    results came from the journal.  The result store reuses this with
    ``resumed=False``: a store replay *does* re-emit perflog rows (the
    stored bytes) and journals a replay meta record instead.
    """
    from repro.runner.pipeline import CaseResult

    result = CaseResult(case=case)
    status = record.get("status", "failed")
    result.passed = status == "passed"
    result.skipped = status == "skipped"
    result.failing_stage = record.get("failing_stage")
    result.failure_reason = record.get("failure_reason", "")
    result.attempts = int(record.get("attempts", 1))
    result.backoff_schedule = [float(x) for x in
                               record.get("backoff_schedule", [])]
    result.fault_log = list(record.get("faults", []))
    result.quarantined = bool(record.get("quarantined", False))
    result.perfvars = {
        var: (float(value), str(unit))
        for var, (value, unit) in record.get("perfvars", {}).items()
    }
    result.build_seconds = float(record.get("build_seconds", 0.0))
    result.job_seconds = float(record.get("job_seconds", 0.0))
    result.queue_seconds = float(record.get("queue_seconds", 0.0))
    result.speculated = bool(record.get("speculated", False))
    result.speculation_won = bool(record.get("speculation_won", False))
    result.hung_attempts = int(record.get("hung_attempts", 0))
    energy = record.get("energy")
    if energy:
        # journals written before the energy field simply lack the key
        # (back-compat: .get returns None and the result stays None)
        from repro.machine.telemetry import EnergyReport

        result.energy = EnergyReport(
            joules=float(energy.get("joules", 0.0)),
            mean_watts=float(energy.get("mean_watts", 0.0)),
            duration_s=float(energy.get("duration_s", 0.0)),
            nodes=int(energy.get("nodes", 1)),
            mean_mem_util=float(energy.get("mean_mem_util", 0.0)),
            mean_network_util=float(energy.get("mean_network_util", 0.0)),
            mean_filesystem_util=float(
                energy.get("mean_filesystem_util", 0.0)
            ),
        )
    result.resumed = resumed
    return result
