"""The asynchronous, dependency-aware execution policy.

DESIGN.md advertises "serial & async execution policies"; this module is
the async one.  A benchmark campaign (the paper's Figure 1 workflow:
~10 programming models x 7 platforms x N environments) consists of
mostly-independent :class:`~repro.runner.pipeline.TestCase` objects --
only ReFrame-style ``depends_on_tests`` edges order them.  The engine
therefore schedules the topologically-ordered case list in
**dependency wavefronts**:

* wave *k* holds every case whose longest dependency chain has length *k*;
* cases within a wave are independent by construction and run concurrently
  on a worker pool (threads: each case drives its own discrete-event
  scheduler simulation, and the shared installer / concretization cache
  are lock-protected);
* the ``finished`` map -- which dependents read their producers' results
  from -- is updated between waves **in the input order**, so dependency
  resolution is bit-for-bit the serial policy's.

Determinism: results are returned in the exact order the serial policy
would produce them (the topological order computed by
:func:`order_by_dependencies`), and the optional ``on_result`` callback
(the executor's perflog emission) fires in that same order.  With a
pinned perflog timestamp, serial and async runs therefore produce
*byte-identical* perflogs and identical reports -- the property
``tests/runner/test_parallel.py`` locks in.
"""

from __future__ import annotations

import statistics
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.pipeline import CaseResult, TestCase, infra_failure

__all__ = [
    "SpeculationPolicy",
    "order_by_dependencies",
    "dependency_waves",
    "resolve_dependencies",
    "run_waves",
]

#: key identifying a producer in the finished-results map (ReFrame
#: semantics: dependencies match by base class name on the same platform)
FinishedKey = Tuple[str, str]


def _dependency_edges(
    cases: Sequence[TestCase],
) -> Tuple[Dict[FinishedKey, List[int]], List[Tuple[int, int]]]:
    """Producer index map and (producer, consumer) edges for *cases*."""
    by_key: Dict[FinishedKey, List[int]] = {}
    for i, case in enumerate(cases):
        key = (case.platform, type(case.test).base_name())
        by_key.setdefault(key, []).append(i)
    edges: List[Tuple[int, int]] = []
    for i, case in enumerate(cases):
        for dep_name in getattr(case.test, "depends_on_tests", ()):
            for j in by_key.get((case.platform, dep_name), []):
                edges.append((j, i))
    return by_key, edges


def _has_dependencies(cases: Sequence[TestCase]) -> bool:
    """Whether any case declares a ``depends_on_tests`` edge.

    The common large campaign is dependency-free; detecting that in one
    O(n) attribute sweep lets ordering and wave partitioning skip the
    graph machinery (and the per-case key construction) entirely.
    """
    return any(
        getattr(case.test, "depends_on_tests", ()) for case in cases
    )


def order_by_dependencies(cases: Sequence[TestCase]) -> List[TestCase]:
    """Topologically order cases so test dependencies run first.

    Dependencies are matched by *base class name* within the same
    platform (ReFrame semantics).  A cycle is a configuration error.
    Dependency-free campaigns keep their input order without building a
    graph at all.
    """
    if not _has_dependencies(cases):
        return list(cases)
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(cases)))
    _, edges = _dependency_edges(cases)
    graph.add_edges_from(edges)
    try:
        order = list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible:
        cycle = nx.find_cycle(graph)
        raise ValueError(f"test dependency cycle: {cycle}") from None
    return [cases[i] for i in order]


def dependency_waves(ordered: Sequence[TestCase]) -> List[List[int]]:
    """Partition an already-ordered case list into concurrent wavefronts.

    Wave of case *i* = 1 + max(wave of its producers), so every producer
    sits in a strictly earlier wave and each wave's members are mutually
    independent.  Within a wave, input order is preserved (determinism).
    A campaign without dependencies is one single, fully-parallel wave
    (computed without touching the edge machinery).
    """
    if not _has_dependencies(ordered):
        return [list(range(len(ordered)))] if ordered else []
    _, edges = _dependency_edges(ordered)
    producers: Dict[int, List[int]] = {}
    for j, i in edges:
        producers.setdefault(i, []).append(j)
    level = [0] * len(ordered)
    # `ordered` is topological, so producers are resolved before consumers
    for i in range(len(ordered)):
        deps = producers.get(i)
        if deps:
            level[i] = 1 + max(level[j] for j in deps)
    waves: List[List[int]] = [[] for _ in range(max(level, default=-1) + 1)]
    for i, lvl in enumerate(level):
        waves[lvl].append(i)
    return waves


def resolve_dependencies(
    case: TestCase, finished: Dict[FinishedKey, CaseResult]
) -> Optional[CaseResult]:
    """Inject producer results into *case*; return a failure on unmet deps.

    Mirrors the serial policy exactly: every declared dependency must have
    a finished, *passed* result on the same platform; otherwise the case
    fails in ``setup`` without entering the pipeline.
    """
    deps = getattr(case.test, "depends_on_tests", ())
    if not deps:
        return None
    resolved: Dict[str, CaseResult] = {}
    missing: List[str] = []
    for dep_name in deps:
        dep_result = finished.get((case.platform, dep_name))
        if dep_result is None or not dep_result.passed:
            missing.append(dep_name)
        else:
            resolved[dep_name] = dep_result
    if missing:
        failure = CaseResult(case=case)
        failure.failing_stage = "setup"
        failure.failure_reason = (
            f"dependencies not satisfied on {case.platform}: "
            f"{', '.join(missing)}"
        )
        return failure
    case.test.dependency_results = resolved
    return None


def _case_duration(result: CaseResult) -> float:
    """The simulated seconds one finished case spent doing work."""
    return float(result.job_seconds) + float(result.build_seconds)


@dataclass
class SpeculationPolicy:
    """Straggler mitigation: speculative duplicates for slow cases.

    When a case's duration exceeds ``straggler_factor x`` the running
    median duration of its completed peers (and at least ``min_peers``
    peers have completed -- a median of one case is noise), one
    speculative duplicate attempt is launched.  *First completion wins*
    on the simulated timeline -- i.e. the attempt with the smaller
    duration -- with a deterministic tie-break preferring the original,
    and a failing duplicate never displaces a passing original.  Only
    the accepted attempt is ever streamed to ``on_result``, so perflog
    rows and journal entries stay single-writer and the output is
    byte-identical to a serial, speculation-free run.

    Why a duplicate can be faster: transient ``slow`` faults clear on
    the next attempt, and health-aware allocation steers the duplicate
    away from nodes that have since been drained.
    """

    straggler_factor: float = 2.0
    #: completed peers needed before the median is trusted
    min_peers: int = 3
    #: simulated duration of a finished case
    duration_of: Callable[[CaseResult], float] = _case_duration

    def __post_init__(self) -> None:
        if self.straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must be > 1, got {self.straggler_factor}"
            )
        if self.min_peers < 1:
            raise ValueError("min_peers must be >= 1")

    # runtime state (campaign-scoped, lock-protected: the consuming loop
    # is single-threaded but shared policies may outlive one run_waves)
    _durations: List[float] = field(default_factory=list, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def note_completed(self, result: CaseResult) -> None:
        """Feed one *accepted* result into the running median."""
        if result.resumed or (not result.passed and not result.skipped):
            return  # replayed/failed cases say nothing about healthy pace
        if result.skipped:
            return
        with self._lock:
            self._durations.append(self.duration_of(result))

    def is_straggler(self, result: CaseResult) -> bool:
        """Whether *result* ran suspiciously slower than its peers."""
        if result.resumed or not result.passed:
            return False  # failures go through the retry path instead
        with self._lock:
            if len(self._durations) < self.min_peers:
                return False
            median = statistics.median(self._durations)
        if median <= 0:
            return False
        return self.duration_of(result) > self.straggler_factor * median

    def choose(
        self, original: CaseResult, duplicate: CaseResult
    ) -> CaseResult:
        """First completion wins; ties (and failures) keep the original."""
        if not duplicate.passed:
            return original
        if self.duration_of(duplicate) < self.duration_of(original):
            return duplicate
        return original


def _speculate(
    case: TestCase,
    original: CaseResult,
    runner: Callable[[TestCase], CaseResult],
    policy: SpeculationPolicy,
) -> CaseResult:
    """Run one speculative duplicate and return the accepted attempt.

    Exactly one of the two attempts is returned (and thus perflogged /
    journaled); the loser is dropped on the floor, mirroring how a real
    speculative executor cancels the slower clone.  The accepted result
    is annotated for provenance either way.
    """
    duplicate = runner(case)
    winner = policy.choose(original, duplicate)
    winner.speculated = True
    winner.speculation_won = winner is duplicate
    return winner


def run_waves(
    ordered: Sequence[TestCase],
    case_runner: Callable[[TestCase], CaseResult],
    workers: int = 1,
    on_result: Optional[Callable[[CaseResult], None]] = None,
    speculation: Optional[SpeculationPolicy] = None,
    on_wave: Optional[Callable[[int, int], None]] = None,
    duplicate_runner: Optional[Callable[[TestCase], CaseResult]] = None,
) -> List[CaseResult]:
    """Execute a topologically-ordered campaign wave by wave.

    ``workers == 1`` degenerates to the serial policy (no pool, no
    threads); ``workers > 1`` runs each wave on a thread pool.  Results
    come back in input order regardless of completion order, and
    ``on_result`` streams in that order too -- *per case*, as soon as the
    case's result is available in order (not batched at wave boundaries),
    so a crash-safe observer (the executor's journal) has every finished
    case on disk before the next one is consumed.  In serial mode the
    result iterator is lazy, so ``on_result`` for case *k* fires strictly
    before case *k+1* starts running.

    Robustness: ``case_runner`` is wrapped so that any unexpected
    exception (``run_case`` is itself hardened, but observers and
    wrappers stacked on top of it may not be) becomes a structured
    infrastructure-failure :class:`CaseResult` instead of tearing down
    the whole campaign.  :class:`~repro.runner.resilience.CampaignAborted`
    is a ``BaseException`` precisely so it cuts through this guard --
    it is the circuit breaker's deliberate stop signal.

    Straggler mitigation: with a ``speculation`` policy, a case whose
    duration exceeds ``straggler_factor x`` the running median of its
    completed peers gets one speculative duplicate; the accepted attempt
    (first simulated completion, original preferred on ties) is the
    *only* one published to results/``on_result``, so downstream
    perflog/journal writers never see a double write.  Speculation
    decisions are made in the deterministic consumption order, so serial
    and async campaigns speculate identically.

    Observability: ``on_wave(index, size)`` fires once per wavefront,
    before any of its cases is dispatched, in deterministic wave order
    (the tracer's campaign track marks wave boundaries with it).

    ``duplicate_runner``, when given, runs speculative duplicates in
    place of ``case_runner`` -- the process-pool policy routes original
    attempts to worker processes but duplicates through an in-process
    runner that sees the campaign-wide fault/watchdog state (so a
    duplicate observes exactly the attempt history a serial campaign's
    would).  Duplicates run in the consumption loop either way.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    results: List[Optional[CaseResult]] = [None] * len(ordered)
    finished: Dict[FinishedKey, CaseResult] = {}
    dep_failed: set = set()

    def guarded(i: int) -> CaseResult:
        case = ordered[i]
        try:
            return case_runner(case)
        except Exception as exc:  # CampaignAborted passes through
            return infra_failure(case, exc)

    dup_runner = duplicate_runner or case_runner

    def guarded_case(i: int) -> Callable[[TestCase], CaseResult]:
        """The guarded runner re-bound for a speculative duplicate."""

        def run_duplicate(_case: TestCase) -> CaseResult:
            try:
                return dup_runner(ordered[i])
            except Exception as exc:  # CampaignAborted passes through
                return infra_failure(ordered[i], exc)

        return run_duplicate

    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None
    try:
        for wave_index, wave in enumerate(dependency_waves(ordered)):
            if on_wave is not None:
                on_wave(wave_index, len(wave))
            runnable: List[int] = []
            for i in wave:
                failure = resolve_dependencies(ordered[i], finished)
                if failure is not None:
                    results[i] = failure
                    dep_failed.add(i)
                else:
                    runnable.append(i)
            if pool is not None and len(runnable) > 1:
                result_iter = pool.map(guarded, runnable)
            else:
                result_iter = map(guarded, runnable)  # lazy: serial policy
            # Consume the wave in input order.  Cases that failed
            # dependency resolution already hold a result; runnable ones
            # are pulled from the (in-order) iterator.  Producer results
            # are published as soon as they arrive -- intra-wave cases
            # are independent by construction, so no same-wave consumer
            # can observe them early -- and ``on_result`` fires per case
            # in the exact serial sequence.
            for i in wave:
                if i in dep_failed:
                    result = results[i]
                else:
                    result = next(result_iter)
                    if speculation is not None and speculation.is_straggler(
                        result  # type: ignore[arg-type]
                    ):
                        result = _speculate(
                            ordered[i],
                            result,  # type: ignore[arg-type]
                            guarded_case(i),
                            speculation,
                        )
                    results[i] = result
                    key = (
                        ordered[i].platform,
                        type(ordered[i].test).base_name(),
                    )
                    finished[key] = result  # last duplicate key wins
                    if speculation is not None:
                        speculation.note_completed(
                            result  # type: ignore[arg-type]
                        )
                if on_result is not None:
                    on_result(result)  # type: ignore[arg-type]
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return results  # type: ignore[return-value]
