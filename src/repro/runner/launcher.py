"""Parallel launchers: how a distributed program is started on a partition.

Part of the system-specific knowledge Principle 5 captures: ARCHER2 uses
``srun``, the Isambard XCI ``aprun``, most clusters ``mpirun``.  The
launcher renders the command line recorded in job scripts and perflogs.
"""

from __future__ import annotations

from typing import Dict, List, Type

__all__ = ["Launcher", "launcher_for", "MpirunLauncher", "SrunLauncher",
           "AprunLauncher", "LocalLauncher"]


class Launcher:
    """Base: render ``<launcher> <opts> <executable> <args>``."""

    name = "abstract"

    def command(self, num_tasks: int, num_cpus_per_task: int) -> List[str]:
        raise NotImplementedError

    def run_command(
        self,
        executable: str,
        args: List[str],
        num_tasks: int,
        num_cpus_per_task: int = 1,
    ) -> str:
        prefix = self.command(num_tasks, num_cpus_per_task)
        return " ".join(prefix + [executable] + list(args)).strip()


class MpirunLauncher(Launcher):
    name = "mpirun"

    def command(self, num_tasks: int, num_cpus_per_task: int) -> List[str]:
        return ["mpirun", "-np", str(num_tasks)]


class SrunLauncher(Launcher):
    name = "srun"

    def command(self, num_tasks: int, num_cpus_per_task: int) -> List[str]:
        out = ["srun", f"--ntasks={num_tasks}"]
        if num_cpus_per_task > 1:
            out.append(f"--cpus-per-task={num_cpus_per_task}")
        return out


class AprunLauncher(Launcher):
    name = "aprun"

    def command(self, num_tasks: int, num_cpus_per_task: int) -> List[str]:
        out = ["aprun", "-n", str(num_tasks)]
        if num_cpus_per_task > 1:
            out += ["-d", str(num_cpus_per_task)]
        return out


class LocalLauncher(Launcher):
    """No launcher: serial or threaded programs started directly."""

    name = "local"

    def command(self, num_tasks: int, num_cpus_per_task: int) -> List[str]:
        return []


_LAUNCHERS: Dict[str, Type[Launcher]] = {
    cls.name: cls
    for cls in (MpirunLauncher, SrunLauncher, AprunLauncher, LocalLauncher)
}


def launcher_for(name: str) -> Launcher:
    if name not in _LAUNCHERS:
        raise KeyError(
            f"unknown launcher {name!r}; known: {', '.join(sorted(_LAUNCHERS))}"
        )
    return _LAUNCHERS[name]()
