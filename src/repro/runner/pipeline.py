"""The regression pipeline: setup -> build -> run -> sanity -> performance.

One :class:`TestCase` is one (benchmark, system, partition, environment)
combination -- the paper's notion of running a benchmark on a *platform*.
:func:`run_case` drives it through the stages and returns a
:class:`CaseResult` that either carries the extracted Figures of Merit or
records exactly which stage failed and why.

The build stage *always* executes (Principle 3: "Rebuild the benchmark
every time it runs"), and both the concretized spec and the generated job
script are kept on the result for provenance (Principles 4 and 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.machine.progmodel import UnsupportedModelError
from repro.pkgmgr.concretizer import ConcretizationError, Concretizer
from repro.pkgmgr.installer import BuildFailure, Installer
from repro.pkgmgr.memo import ConcretizationCache
from repro.pkgmgr.spec import Spec
from repro.runner.benchmark import (
    ProgramContext,
    RegressionTest,
    SpackTest,
)
from repro.runner.config import PartitionConfig, SystemConfig
from repro.runner.launcher import launcher_for
from repro.runner.sanity import SanityError
from repro.scheduler import Job, JobState, make_scheduler
from repro.systems.registry import system_environment

__all__ = ["TestCase", "CaseResult", "PipelineError", "run_case", "STAGES"]

STAGES = ("setup", "build", "run", "sanity", "performance")


class PipelineError(Exception):
    """A stage failed for infrastructure (not benchmark) reasons."""


@dataclass
class TestCase:
    test: RegressionTest
    system: SystemConfig
    partition: PartitionConfig
    environ_name: str = "default"
    #: scheduler options from the command line (-J'--account=...' etc.)
    account: Optional[str] = None
    qos: Optional[str] = None

    @property
    def platform(self) -> str:
        return f"{self.system.name}:{self.partition.name}"

    @property
    def display_name(self) -> str:
        return f"{self.test.name} @{self.platform}+{self.environ_name}"


@dataclass
class CaseResult:
    case: TestCase
    passed: bool = False
    failing_stage: Optional[str] = None
    failure_reason: str = ""
    stdout: str = ""
    perfvars: Dict[str, Tuple[float, str]] = field(default_factory=dict)
    #: energy/system-state capture (the paper's Section 4 future work)
    energy: Optional[object] = None
    concrete_spec: Optional[Spec] = None
    #: whether the concretizer solution was served from the memo cache
    #: (None: no cache in play / not a SpackTest).  Provenance metadata --
    #: the build itself is never cached for the root (Principle 3).
    concretize_cache_hit: Optional[bool] = None
    build_log: List[str] = field(default_factory=list)
    job_script: str = ""
    run_command: str = ""
    job_seconds: float = 0.0
    queue_seconds: float = 0.0
    build_seconds: float = 0.0
    timestamp: float = field(default_factory=time.time)

    @property
    def skipped(self) -> bool:
        return self.failing_stage == "setup" and "not valid" in self.failure_reason


def _fail(result: CaseResult, stage: str, reason: str) -> CaseResult:
    result.passed = False
    result.failing_stage = stage
    result.failure_reason = reason
    return result


def dry_run_case(case: TestCase) -> str:
    """Render what *would* run, without building or submitting.

    Concretizes the spec (cheap, hermetic) and renders the launcher
    command and batch script -- a preview of the Principle 4/5 provenance
    that lets users eyeball a campaign before burning allocation.
    """
    test = case.test
    lines = [f"~~~ dry run: {case.display_name}"]
    if not test.supports_platform(case.system.name, case.partition.name):
        lines.append("    SKIP: platform not in valid_systems")
        return "\n".join(lines)
    environ = case.partition.environ(case.environ_name)
    test.current_system = case.system
    test.current_partition = case.partition
    test.current_environ = environ
    for hook in test.hooks("after", "setup"):
        hook()
    for hook in test.hooks("before", "run"):
        hook()
    if isinstance(test, SpackTest):
        pkg_env = system_environment(case.platform)
        spec = Spec(test.effective_spec())
        if spec.compiler is None:
            spec = spec.constrain(Spec(f"%{environ.compiler_spec}"))
        try:
            concrete = Concretizer(env=pkg_env).concretize(spec)
            lines.append(f"    spec: {concrete.format()}")
        except ConcretizationError as exc:
            lines.append(f"    BUILD WOULD FAIL: {exc}")
            return "\n".join(lines)
    launcher = launcher_for(case.partition.launcher)
    command = launcher.run_command(
        test.executable or f"./{test.name}",
        [str(o) for o in test.executable_opts],
        test.num_tasks,
        test.num_cpus_per_task,
    )
    scheduler = make_scheduler(
        case.partition.scheduler,
        num_nodes=case.partition.num_nodes,
        cores_per_node=max(case.partition.cores_per_node, 1),
    ) if case.partition.scheduler != "local" else make_scheduler("local")
    job = Job(
        name=test.name,
        payload=lambda ctx: ("", 0.0),
        num_tasks=test.num_tasks,
        num_tasks_per_node=test.num_tasks_per_node,
        num_cpus_per_task=test.num_cpus_per_task,
        time_limit=float(test.time_limit),
        account=case.account,
        qos=case.qos,
        partition=case.partition.name,
    )
    script = scheduler.render_script(job, command)
    lines.append("    " + "\n    ".join(script.splitlines()))
    return "\n".join(lines)


def run_case(
    case: TestCase,
    installer: Optional[Installer] = None,
    concretizer_cache: Optional[ConcretizationCache] = None,
) -> CaseResult:
    """Drive one test case through the whole pipeline.

    ``concretizer_cache``, when given, memoizes the concretizer *solve*
    across cases (see :mod:`repro.pkgmgr.memo`); whether this case hit the
    cache is recorded on the result for provenance.  The build stage still
    always rebuilds the root (Principle 3).
    """
    test = case.test
    result = CaseResult(case=case)
    installer = installer or Installer()

    # ---------------------------------------------------------------- setup --
    if not test.supports_platform(case.system.name, case.partition.name):
        return _fail(
            result, "setup",
            f"platform {case.platform} not valid for {test.name} "
            f"(valid_systems={test.valid_systems})",
        )
    if not test.supports_environ(case.environ_name):
        return _fail(
            result, "setup",
            f"environment {case.environ_name} not valid for {test.name}",
        )
    try:
        environ = case.partition.environ(case.environ_name)
    except Exception as exc:
        return _fail(result, "setup", str(exc))

    test.current_system = case.system
    test.current_partition = case.partition
    test.current_environ = environ
    for hook in test.hooks("after", "setup"):
        hook()

    # ---------------------------------------------------------------- build --
    concrete = None
    for hook in test.hooks("before", "build"):
        hook()
    if isinstance(test, SpackTest):
        pkg_env = system_environment(case.platform)
        spec_text = test.effective_spec()
        spec = Spec(spec_text)
        # the selected programming environment constrains the compiler,
        # unless the spec already pins one (the paper pins %gcc@9.2.0 for
        # the Volta builds explicitly)
        if spec.compiler is None:
            spec = spec.constrain(Spec(f"%{environ.compiler_spec}"))
        concretizer = Concretizer(env=pkg_env, cache=concretizer_cache)
        try:
            concrete = concretizer.concretize(spec)
            records = installer.install(concrete, rebuild=test.rebuild)
        except (ConcretizationError, BuildFailure) as exc:
            result.concretize_cache_hit = concretizer.last_cache_hit
            return _fail(result, "build", str(exc))
        result.concrete_spec = concrete
        result.concretize_cache_hit = concretizer.last_cache_hit
        result.build_log = [line for r in records for line in r.log]
        result.build_seconds = sum(r.build_seconds for r in records)

    # ------------------------------------------------------------------ run --
    for hook in test.hooks("before", "run"):
        hook()
    node = case.partition.node
    ctx = ProgramContext(
        system=case.system.name,
        partition=case.partition.name,
        environ=case.environ_name,
        node=node,
        num_tasks=test.num_tasks,
        num_tasks_per_node=test.num_tasks_per_node,
        num_cpus_per_task=test.num_cpus_per_task,
        compiler=environ.compiler,
        compiler_version=environ.compiler_version or "",
        spec=concrete,
    )

    def payload(job_ctx):
        return test.program(ctx)

    scheduler = make_scheduler(
        case.partition.scheduler,
        num_nodes=case.partition.num_nodes,
        cores_per_node=max(case.partition.cores_per_node, 1),
        require_account=case.system.requires_account,
        require_qos=case.system.requires_qos,
    ) if case.partition.scheduler != "local" else make_scheduler("local")

    job = Job(
        name=test.name,
        payload=payload,
        num_tasks=test.num_tasks,
        num_tasks_per_node=test.num_tasks_per_node,
        num_cpus_per_task=test.num_cpus_per_task,
        time_limit=float(test.time_limit),
        account=case.account or ("z19" if case.system.requires_account else None),
        qos=case.qos or ("standard" if case.system.requires_qos else None),
        partition=case.partition.name,
        extra_options=tuple(case.partition.access),
    )
    launcher = launcher_for(case.partition.launcher)
    result.run_command = launcher.run_command(
        test.executable or f"./{test.name}",
        [str(o) for o in test.executable_opts],
        test.num_tasks,
        test.num_cpus_per_task,
    )
    result.job_script = scheduler.render_script(job, result.run_command)

    try:
        job_id = scheduler.submit(job)
        scheduler.wait_all()
        job_result = scheduler.result(job_id)
    except Exception as exc:
        return _fail(result, "run", f"scheduler error: {exc}")

    result.stdout = job_result.stdout
    result.job_seconds = job_result.run_seconds
    result.queue_seconds = job_result.queue_seconds
    # capture system-state telemetry over the (simulated) runtime
    from repro.machine.telemetry import capture_telemetry

    num_nodes = max(
        job.nodes_needed(max(case.partition.cores_per_node, 1)), 1
    )
    _, result.energy = capture_telemetry(
        node=node,
        duration_s=max(result.job_seconds, 1.0),
        mem_util=float(getattr(test, "telemetry_mem_util", 0.6)),
        compute_util=float(getattr(test, "telemetry_compute_util", 0.2)),
        comm_fraction=0.05,
        num_nodes=num_nodes,
        seed_context=f"{case.platform}/{test.name}",
    )
    if job_result.state is not JobState.COMPLETED:
        reason = job_result.stderr or job_result.state.value
        # a model refusing to run is the Figure 2 '*' box, keep it precise
        if UnsupportedModelError.__name__ in reason:
            return _fail(result, "run", reason)
        return _fail(result, "run", f"job {job_result.state.value}: {reason}")
    for hook in test.hooks("after", "run"):
        hook()

    # --------------------------------------------------------------- sanity --
    try:
        test.check_sanity(result.stdout)
    except SanityError as exc:
        return _fail(result, "sanity", str(exc))

    # ---------------------------------------------------------- performance --
    try:
        result.perfvars = test.extract_performance(result.stdout)
        test.check_references(case.platform, result.perfvars)
    except SanityError as exc:
        return _fail(result, "performance", str(exc))

    result.passed = True
    return result
