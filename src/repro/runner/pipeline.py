"""The regression pipeline: setup -> build -> run -> sanity -> performance.

One :class:`TestCase` is one (benchmark, system, partition, environment)
combination -- the paper's notion of running a benchmark on a *platform*.
:func:`run_case` drives it through the stages and returns a
:class:`CaseResult` that either carries the extracted Figures of Merit or
records exactly which stage failed and why.

The build stage *always* executes (Principle 3: "Rebuild the benchmark
every time it runs"), and both the concretized spec and the generated job
script are kept on the result for provenance (Principles 4 and 5).

Resilience (DESIGN.md section 6): :func:`run_case` is *total* -- no
exception short of a deliberate :class:`~repro.runner.resilience.CampaignAborted`
escapes it.  Hook crashes, scheduler errors, build flakes and injected
faults all become structured stage failures, classified transient or
permanent; transient ones are retried under a
:class:`~repro.runner.resilience.RetryPolicy` with deterministic backoff
slept on the virtual :class:`~repro.faults.FaultClock`.  The attempt
count, backoff schedule and fault history land on the result for
provenance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults import FaultClock, FaultPlan, InjectedFault, SchedulerFaultInjector
from repro.machine.progmodel import UnsupportedModelError
from repro.machine.telemetry import capture_telemetry
from repro.obs.trace import CaseTimeline, SpanRecorder
from repro.pkgmgr.concretizer import ConcretizationError, Concretizer
from repro.pkgmgr.environment import Environment
from repro.pkgmgr.installer import BuildFailure, Installer
from repro.pkgmgr.memo import ConcretizationCache
from repro.pkgmgr.spec import Spec
from repro.runner.benchmark import (
    ProgramContext,
    RegressionTest,
    SpackTest,
)
from repro.runner.config import PartitionConfig, SystemConfig
from repro.runner.launcher import launcher_for
from repro.runner.resilience import RetryPolicy, is_transient
from repro.runner.sanity import SanityError
from repro.scheduler import Job, JobState, make_scheduler
from repro.systems.registry import UnknownSystemError, system_environment

__all__ = [
    "TestCase",
    "CaseResult",
    "PipelineError",
    "infra_failure",
    "run_case",
    "STAGES",
]

STAGES = ("setup", "build", "run", "sanity", "performance")


def _pkg_environment(platform: str) -> Environment:
    """The package environment for a case's platform.

    Systems absent from the hardware registry -- synthetic fleets merged
    from a ``--site`` YAML, whose names the site config has already
    validated -- get the basic environment, matching the paper's
    behaviour for systems the framework does not support yet.
    """
    try:
        return system_environment(platform)
    except UnknownSystemError:
        return Environment.basic(platform.partition(":")[0])


class PipelineError(Exception):
    """A stage failed for infrastructure (not benchmark) reasons."""


@dataclass
class TestCase:
    test: RegressionTest
    system: SystemConfig
    partition: PartitionConfig
    environ_name: str = "default"
    #: scheduler options from the command line (-J'--account=...' etc.)
    account: Optional[str] = None
    qos: Optional[str] = None

    @property
    def platform(self) -> str:
        return f"{self.system.name}:{self.partition.name}"

    @property
    def display_name(self) -> str:
        cached = self.__dict__.get("_display_name")
        if cached is None:
            cached = f"{self.test.name} @{self.platform}+{self.environ_name}"
            self.__dict__["_display_name"] = cached
        return cached


@dataclass
class CaseResult:
    case: TestCase
    passed: bool = False
    failing_stage: Optional[str] = None
    failure_reason: str = ""
    #: explicit skip marker, set at setup time when the case does not
    #: apply to the platform/environment.  Never inferred from the
    #: failure message: an unrelated failure whose text happens to say
    #: "not valid" must not be misclassified as a skip.
    skipped: bool = False
    stdout: str = ""
    perfvars: Dict[str, Tuple[float, str]] = field(default_factory=dict)
    #: energy/system-state capture (the paper's Section 4 future work)
    energy: Optional[object] = None
    concrete_spec: Optional[Spec] = None
    #: whether the concretizer solution was served from the memo cache
    #: (None: no cache in play / not a SpackTest).  Provenance metadata --
    #: the build itself is never cached for the root (Principle 3).
    concretize_cache_hit: Optional[bool] = None
    build_log: List[str] = field(default_factory=list)
    job_script: str = ""
    run_command: str = ""
    job_seconds: float = 0.0
    queue_seconds: float = 0.0
    build_seconds: float = 0.0
    timestamp: float = field(default_factory=time.time)
    # ---- resilience provenance (DESIGN.md section 6) ----
    #: pipeline attempts this result took (1 = first try)
    attempts: int = 1
    #: virtual seconds slept between attempts (deterministic backoff)
    backoff_schedule: List[float] = field(default_factory=list)
    #: descriptions of every injected fault this case absorbed
    fault_log: List[str] = field(default_factory=list)
    #: replayed from a campaign journal by --resume (not re-run)
    resumed: bool = False
    # ---- incremental campaigns (DESIGN.md "Incremental campaigns") ----
    #: served from the content-addressed result store (not re-run); the
    #: stored perflog rows/spans are re-emitted byte-identically
    replayed: bool = False
    #: run id of the campaign whose execution produced the stored entry
    #: (provenance: ``cached_from``); None for freshly executed cases
    cached_from: Optional[str] = None
    #: the store entry a replay was served from (carries the stored
    #: perflog lines/spans until the executor persists them)
    _replay: Optional[dict] = field(default=None, repr=False, compare=False)
    #: a retryable failure exhausted its retry budget (or the case was
    #: barred by the executor's quarantine ledger)
    quarantined: bool = False
    # ---- slow-fault provenance (DESIGN.md section 6.4) ----
    #: a speculative duplicate was launched for this case (straggler)
    speculated: bool = False
    #: the accepted attempt was the speculative duplicate, not the original
    speculation_won: bool = False
    #: attempts on which the watchdog killed a hung job/build for this case
    hung_attempts: int = 0
    #: whether the recorded failure is worth retrying (retry taxonomy)
    retryable: bool = field(default=False, repr=False)
    #: progress marker for the blanket exception guard
    _stage: str = field(default="setup", repr=False)
    # ---- observability (DESIGN.md section 7) ----
    #: the SpanRecorder holding this case's trace, attached by run_case
    #: when tracing is enabled.  The executor flushes it in deterministic
    #: result order; under speculation only the *accepted* attempt's
    #: recorder survives (the loser's spans vanish with its perflog rows).
    _trace: Optional[object] = field(default=None, repr=False, compare=False)


def _fail(
    result: CaseResult,
    stage: str,
    reason: str,
    retryable: bool = False,
    skipped: bool = False,
) -> CaseResult:
    result.passed = False
    result.failing_stage = stage
    result.failure_reason = reason
    result.retryable = retryable
    result.skipped = skipped
    return result


def infra_failure(case: TestCase, exc: BaseException,
                  stage: str = "internal") -> CaseResult:
    """A structured result for an exception that escaped the pipeline.

    The last line of defence (used by :func:`repro.runner.parallel.run_waves`):
    whatever blew up, the campaign records a FAILED case and keeps going
    instead of dying -- the difference between an unattended campaign
    losing one case and losing a night of allocation.
    """
    result = CaseResult(case=case)
    return _fail(
        result, stage,
        f"unexpected {type(exc).__name__}: {exc}",
        retryable=is_transient(exc),
    )


def _run_hooks(
    test: RegressionTest,
    when: str,
    stage: str,
    result: CaseResult,
    faults: Optional[FaultPlan],
    target: str,
) -> Optional[CaseResult]:
    """Run the (when, stage) hooks; a raising hook is a *stage* failure.

    Hooks are user code: an exception must degrade to a structured
    failure naming the hook (never abort the campaign), and injected
    ``hook`` faults fire here -- transient ones are retryable.
    """
    for hook in test.hooks(when, stage):
        name = getattr(hook, "__name__", repr(hook))
        try:
            if faults is not None:
                faults.fire("hook", target)
            hook()
        except InjectedFault as exc:
            return _fail(
                result, stage,
                f"hook {name!r} ({when} {stage}) raised "
                f"InjectedFault: {exc}",
                retryable=exc.transient,
            )
        except Exception as exc:
            return _fail(
                result, stage,
                f"hook {name!r} ({when} {stage}) raised "
                f"{type(exc).__name__}: {exc}",
                retryable=is_transient(exc),
            )
    return None


def dry_run_case(case: TestCase) -> str:
    """Render what *would* run, without building or submitting.

    Concretizes the spec (cheap, hermetic) and renders the launcher
    command and batch script -- a preview of the Principle 4/5 provenance
    that lets users eyeball a campaign before burning allocation.
    """
    test = case.test
    lines = [f"~~~ dry run: {case.display_name}"]
    if not test.supports_platform(case.system.name, case.partition.name):
        lines.append("    SKIP: platform not in valid_systems")
        return "\n".join(lines)
    environ = case.partition.environ(case.environ_name)
    test.current_system = case.system
    test.current_partition = case.partition
    test.current_environ = environ
    for hook in test.hooks("after", "setup"):
        hook()
    for hook in test.hooks("before", "run"):
        hook()
    if isinstance(test, SpackTest):
        pkg_env = _pkg_environment(case.platform)
        spec = Spec(test.effective_spec())
        if spec.compiler is None:
            spec = spec.constrain(Spec(f"%{environ.compiler_spec}"))
        try:
            concrete = Concretizer(env=pkg_env).concretize(spec)
            lines.append(f"    spec: {concrete.format()}")
        except ConcretizationError as exc:
            lines.append(f"    BUILD WOULD FAIL: {exc}")
            return "\n".join(lines)
    launcher = launcher_for(case.partition.launcher)
    command = launcher.run_command(
        test.executable or f"./{test.name}",
        [str(o) for o in test.executable_opts],
        test.num_tasks,
        test.num_cpus_per_task,
    )
    scheduler = make_scheduler(
        case.partition.scheduler,
        num_nodes=case.partition.num_nodes,
        cores_per_node=max(case.partition.cores_per_node, 1),
    ) if case.partition.scheduler != "local" else make_scheduler("local")
    job = Job(
        name=test.name,
        payload=lambda ctx: ("", 0.0),
        num_tasks=test.num_tasks,
        num_tasks_per_node=test.num_tasks_per_node,
        num_cpus_per_task=test.num_cpus_per_task,
        time_limit=float(test.time_limit),
        account=case.account or case.system.default_account,
        qos=case.qos or case.system.default_qos,
        partition=case.partition.name,
    )
    script = scheduler.render_script(job, command)
    lines.append("    " + "\n    ".join(script.splitlines()))
    return "\n".join(lines)


def run_case(
    case: TestCase,
    installer: Optional[Installer] = None,
    concretizer_cache: Optional[ConcretizationCache] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    clock: Optional[FaultClock] = None,
    watchdog: Optional[object] = None,
    health: Optional[object] = None,
    trace: Optional[SpanRecorder] = None,
) -> CaseResult:
    """Drive one test case through the whole pipeline, with retries.

    ``concretizer_cache``, when given, memoizes the concretizer *solve*
    across cases (see :mod:`repro.pkgmgr.memo`); whether this case hit the
    cache is recorded on the result for provenance.  The build stage still
    always rebuilds the root (Principle 3).

    ``retry`` bounds how often a *transient* failure (scheduler error,
    build flake, job timeout/node failure, transient injected fault) is
    re-attempted; the default is a single attempt, the executor passes
    its campaign policy.  Backoff between attempts is slept on ``clock``
    (virtual time -- the campaign never sleeps for real), and ``faults``
    is the optional chaos plan consulted at every injection site.

    ``watchdog`` (:class:`~repro.runner.watchdog.Watchdog`) enforces the
    slow-fault deadlines: it is armed on the per-case scheduler at every
    job start (run-stage hang kill) and consulted after the build stage
    (build budget); a watchdog kill is a *transient* HUNG failure, so it
    feeds the same retry loop.  ``health``
    (:class:`~repro.runner.health.HealthTracker`) receives per-node
    outcome attribution and steers allocation away from drained nodes.

    This function is *total*: any exception short of
    :class:`~repro.runner.resilience.CampaignAborted` becomes a
    structured FAILED result.
    """
    policy = retry or RetryPolicy.single()
    if clock is None:
        clock = faults.clock if faults is not None else FaultClock()
    installer = installer or Installer()
    target = case.display_name
    backoffs: List[float] = []
    result = CaseResult(case=case)
    hung_attempts = 0
    # the per-case simulated timeline (DESIGN.md section 7): attempt
    # spans with stage children laid end-to-end, backoff spans between
    # attempts, scheduler sub-spans mapped on via at_offset.  Inert
    # (zero-cost no-ops) when trace is None.
    tl = CaseTimeline(trace)

    for attempt in range(1, policy.max_attempts + 1):
        attempt_span = tl.start("attempt", cat="attempt", n=attempt)
        result = _attempt_case(case, installer, concretizer_cache, faults,
                               watchdog, health, tl)
        hung_attempts += result.hung_attempts
        result.hung_attempts = hung_attempts
        result.attempts = attempt
        result.backoff_schedule = list(backoffs)
        if faults is not None:
            result.fault_log = [
                f.describe() for f in faults.faults_for(target)
            ]
        if attempt_span is not None:
            attempt_span.attrs["status"] = (
                "passed" if result.passed
                else ("skipped" if result.skipped else "failed")
            )
            if result.failing_stage:
                attempt_span.attrs["stage"] = result.failing_stage
        tl.finish(attempt_span)
        if result.passed or not result.retryable:
            break
        if attempt == policy.max_attempts:
            # retry budget exhausted: degrade to FAILED without sinking
            # the wavefront (the executor's quarantine ledger counts it)
            if policy.max_attempts > 1:
                result.quarantined = True
            break
        delay = policy.backoff(attempt, key=target)
        clock.sleep(delay)
        backoffs.append(delay)
        tl.span("backoff", delay, cat="retry", after_attempt=attempt)
    result._trace = trace
    return result


def _attempt_case(
    case: TestCase,
    installer: Installer,
    concretizer_cache: Optional[ConcretizationCache],
    faults: Optional[FaultPlan],
    watchdog: Optional[object] = None,
    health: Optional[object] = None,
    tl: Optional[CaseTimeline] = None,
) -> CaseResult:
    """One pipeline pass; never raises (except deliberate aborts)."""
    result = CaseResult(case=case)
    if tl is None:
        tl = CaseTimeline(None)
    try:
        return _attempt_stages(case, result, installer,
                               concretizer_cache, faults,
                               watchdog, health, tl)
    except InjectedFault as exc:
        return _fail(result, result._stage, str(exc),
                     retryable=exc.transient)
    except Exception as exc:
        # the hardening contract: an unexpected exception in *any* stage
        # (user code included) is one failed case, not a dead campaign
        return _fail(
            result, result._stage,
            f"unexpected {type(exc).__name__}: {exc}",
            retryable=is_transient(exc),
        )


def _attempt_stages(
    case: TestCase,
    result: CaseResult,
    installer: Installer,
    concretizer_cache: Optional[ConcretizationCache],
    faults: Optional[FaultPlan],
    watchdog: Optional[object] = None,
    health: Optional[object] = None,
    tl: Optional[CaseTimeline] = None,
) -> CaseResult:
    test = case.test
    target = case.display_name
    if tl is None:
        tl = CaseTimeline(None)

    # ---------------------------------------------------------------- setup --
    result._stage = "setup"
    tl.instant("setup", cat="stage")
    if not test.supports_platform(case.system.name, case.partition.name):
        return _fail(
            result, "setup",
            f"platform {case.platform} not valid for {test.name} "
            f"(valid_systems={test.valid_systems})",
            skipped=True,
        )
    if not test.supports_environ(case.environ_name):
        return _fail(
            result, "setup",
            f"environment {case.environ_name} not valid for {test.name}",
            skipped=True,
        )
    try:
        environ = case.partition.environ(case.environ_name)
    except Exception as exc:
        return _fail(result, "setup", str(exc))

    test.current_system = case.system
    test.current_partition = case.partition
    test.current_environ = environ
    failure = _run_hooks(test, "after", "setup", result, faults, target)
    if failure is not None:
        return failure

    # ---------------------------------------------------------------- build --
    result._stage = "build"
    build_span = tl.start("build", cat="stage")
    concrete = None
    failure = _run_hooks(test, "before", "build", result, faults, target)
    if failure is not None:
        return failure
    if faults is not None:
        # a transient build failure (compiler node hiccup, fetch error);
        # every benchmark rebuilds each run (Principle 3), so every case
        # has a build stage to flake -- Spack-managed or not.  The blanket
        # guard converts the raise into a retryable 'build' failure.
        faults.fire("build", target)
    if isinstance(test, SpackTest):
        pkg_env = _pkg_environment(case.platform)
        spec_text = test.effective_spec()
        spec = Spec(spec_text)
        # the selected programming environment constrains the compiler,
        # unless the spec already pins one (the paper pins %gcc@9.2.0 for
        # the Volta builds explicitly)
        if spec.compiler is None:
            spec = spec.constrain(Spec(f"%{environ.compiler_spec}"))
        concretizer = Concretizer(env=pkg_env, cache=concretizer_cache)
        try:
            concrete = concretizer.concretize(spec)
            tl.instant("concretize", cat="pkg",
                       cache_hit=bool(concretizer.last_cache_hit))
            records = installer.install(concrete, rebuild=test.rebuild)
        except (ConcretizationError, BuildFailure, InjectedFault) as exc:
            result.concretize_cache_hit = concretizer.last_cache_hit
            return _fail(result, "build", str(exc),
                         retryable=is_transient(exc))
        result.concrete_spec = concrete
        result.concretize_cache_hit = concretizer.last_cache_hit
        result.build_log = [line for r in records for line in r.log]
        result.build_seconds = sum(r.build_seconds for r in records)
        tl.instant("install", cat="pkg", packages=len(records))
        tl.advance(result.build_seconds)
    tl.finish(build_span)

    # watchdog build budget (DESIGN.md section 6.4): a build that blows
    # its deadline is treated like a hung build node -- transient, so the
    # retry loop re-attempts it (a wedged compiler node is as retryable
    # as a wedged compute node)
    if watchdog is not None:
        violation = watchdog.check_build(target, result.build_seconds)
        if violation is not None:
            result.hung_attempts = 1
            tl.instant("build-budget-kill", cat="watchdog")
            return _fail(result, "build", violation, retryable=True)

    # ------------------------------------------------------------------ run --
    result._stage = "run"
    failure = _run_hooks(test, "before", "run", result, faults, target)
    if failure is not None:
        return failure
    run_span = tl.start("run", cat="stage")
    # the scheduler's SimClock restarts at 0 for every case; its spans
    # (submit, queue-wait, job-run, watchdog beats) are mapped onto the
    # case timeline by the cursor offset at scheduler construction
    sched_trace = tl.rec.at_offset(tl.t) if tl.active else None
    node = case.partition.node
    ctx = ProgramContext(
        system=case.system.name,
        partition=case.partition.name,
        environ=case.environ_name,
        node=node,
        num_tasks=test.num_tasks,
        num_tasks_per_node=test.num_tasks_per_node,
        num_cpus_per_task=test.num_cpus_per_task,
        compiler=environ.compiler,
        compiler_version=environ.compiler_version or "",
        spec=concrete,
    )

    def payload(job_ctx):
        return test.program(ctx)

    injector = (
        SchedulerFaultInjector(faults, target) if faults is not None else None
    )
    scheduler = make_scheduler(
        case.partition.scheduler,
        num_nodes=case.partition.num_nodes,
        cores_per_node=max(case.partition.cores_per_node, 1),
        require_account=case.system.requires_account,
        require_qos=case.system.requires_qos,
        fault_injector=injector,
        watchdog=watchdog,
        health=health,
        trace=sched_trace,
    ) if case.partition.scheduler != "local" else make_scheduler(
        "local", fault_injector=injector, watchdog=watchdog, health=health,
        trace=sched_trace,
    )

    job = Job(
        name=test.name,
        payload=payload,
        num_tasks=test.num_tasks,
        num_tasks_per_node=test.num_tasks_per_node,
        num_cpus_per_task=test.num_cpus_per_task,
        time_limit=float(test.time_limit),
        # accounting defaults are *configuration* (Principle 5): the
        # system config says what jobs are billed to when the command
        # line does not; a required-but-unconfigured account is a clean
        # admission-control failure, not a runner-invented fallback
        account=case.account or case.system.default_account,
        qos=case.qos or case.system.default_qos,
        partition=case.partition.name,
        extra_options=tuple(case.partition.access),
    )
    launcher = launcher_for(case.partition.launcher)
    result.run_command = launcher.run_command(
        test.executable or f"./{test.name}",
        [str(o) for o in test.executable_opts],
        test.num_tasks,
        test.num_cpus_per_task,
    )
    result.job_script = scheduler.render_script(job, result.run_command)

    try:
        job_id = scheduler.submit(job)
        scheduler.wait_all()
        job_result = scheduler.result(job_id)
    except Exception as exc:
        # however far the simulation got, the cursor moves with it so
        # any scheduler spans already recorded stay inside the run span
        tl.advance(scheduler.clock.now)
        return _fail(result, "run", f"scheduler error: {exc}",
                     retryable=is_transient(exc))
    tl.advance(scheduler.clock.now)
    tl.finish(run_span)

    result.stdout = job_result.stdout
    result.job_seconds = job_result.run_seconds
    result.queue_seconds = job_result.queue_seconds
    # capture system-state telemetry over the (simulated) runtime
    num_nodes = max(
        job.nodes_needed(max(case.partition.cores_per_node, 1)), 1
    )
    _, result.energy = capture_telemetry(
        node=node,
        duration_s=max(result.job_seconds, 1.0),
        mem_util=float(getattr(test, "telemetry_mem_util", 0.6)),
        compute_util=float(getattr(test, "telemetry_compute_util", 0.2)),
        comm_fraction=0.05,
        num_nodes=num_nodes,
        seed_context=f"{case.platform}/{test.name}",
    )
    if job_result.state is not JobState.COMPLETED:
        reason = job_result.stderr or job_result.state.value
        # a model refusing to run is the Figure 2 '*' box, keep it precise
        if UnsupportedModelError.__name__ in reason:
            return _fail(result, "run", reason)
        if job_result.state is JobState.HUNG:
            # the watchdog killed a hung job: count it for provenance
            result.hung_attempts = 1
        return _fail(
            result, "run", f"job {job_result.state.value}: {reason}",
            # timeouts, node failures and watchdog kills blame the
            # machine, not the program: worth retrying.  A FAILED job
            # is a program crash.
            retryable=job_result.state.transient_failure,
        )
    failure = _run_hooks(test, "after", "run", result, faults, target)
    if failure is not None:
        return failure

    # --------------------------------------------------------------- sanity --
    result._stage = "sanity"
    tl.instant("sanity", cat="stage")
    try:
        test.check_sanity(result.stdout)
    except SanityError as exc:
        return _fail(result, "sanity", str(exc))

    # ---------------------------------------------------------- performance --
    result._stage = "performance"
    tl.instant("performance", cat="stage")
    try:
        result.perfvars = test.extract_performance(result.stdout)
        test.check_references(case.platform, result.perfvars)
    except SanityError as exc:
        return _fail(result, "performance", str(exc))

    result.passed = True
    return result
