"""Typed test-definition fields: ``variable`` and ``parameter``.

ReFrame benchmarks declare tunables as class-level descriptors.  A
*variable* is a single (possibly overridable) value -- the paper's appendix
overrides them with ``--setvar num_tasks=8`` on the command line.  A
*parameter* is a set of values that multiplies the test into variants
(BabelStream's programming model is a parameter; one ReFrame run fans out
over all of them).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Type

__all__ = ["variable", "parameter", "FieldError"]


class FieldError(TypeError):
    """Raised on type mismatches or invalid field access."""


class variable:
    """A typed, defaulted, overridable test attribute.

    Examples
    --------
    >>> class T:
    ...     num_tasks = variable(int, value=1)
    """

    def __init__(self, *types: type, value: Any = None):
        if not types:
            types = (object,)
        self.types = types
        self.default = value
        self.name = "<unbound>"
        if value is not None:
            self._check(value)

    def _check(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, self.types):
            names = "/".join(t.__name__ for t in self.types)
            raise FieldError(
                f"variable {self.name!r} expects {names}, "
                f"got {type(value).__name__}: {value!r}"
            )

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        return obj.__dict__.get(self.name, self.default)

    def __set__(self, obj: Any, value: Any) -> None:
        self._check(value)
        obj.__dict__[self.name] = value

    def coerce(self, text: str) -> Any:
        """Parse a ``--setvar name=text`` string into the declared type."""
        target = self.types[0]
        if target is bool:
            low = text.lower()
            if low in ("true", "1", "yes"):
                return True
            if low in ("false", "0", "no"):
                return False
            raise FieldError(f"cannot parse bool from {text!r}")
        if target in (int, float, str):
            try:
                return target(text)
            except ValueError as exc:
                raise FieldError(
                    f"cannot parse {target.__name__} from {text!r}"
                ) from exc
        return text


class parameter:
    """A test parameter: the test is instantiated once per value."""

    def __init__(self, values: Iterable[Any]):
        self.values: Tuple[Any, ...] = tuple(values)
        if not self.values:
            raise FieldError("parameter needs at least one value")
        self.name = "<unbound>"

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        if self.name not in obj.__dict__:
            raise FieldError(
                f"parameter {self.name!r} accessed before instantiation; "
                f"instantiate via variants()"
            )
        return obj.__dict__[self.name]


def class_parameters(cls: type) -> Dict[str, parameter]:
    """All parameters declared on a class (MRO-aware)."""
    out: Dict[str, parameter] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, parameter):
                out[name] = attr
    return out


def class_variables(cls: type) -> Dict[str, variable]:
    """All variables declared on a class (MRO-aware)."""
    out: Dict[str, variable] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, variable):
                out[name] = attr
    return out


def parameter_space(cls: type) -> List[Dict[str, Any]]:
    """The cartesian product of all declared parameters."""
    params = class_parameters(cls)
    if not params:
        return [{}]
    names = sorted(params)
    combos = itertools.product(*(params[n].values for n in names))
    return [dict(zip(names, combo)) for combo in combos]
