"""Hang detection: per-stage deadlines, heartbeats, and the kill switch.

PR 3's resilience layer handles *fail-fast* faults (crashes, rejections,
node death); this module handles the other half of what kills unattended
campaigns (DESIGN.md section 6.4): *slow* faults.  A hung build or a
wedged job produces no exception -- it simply stops making progress --
so the framework needs an active component that (a) observes progress
and (b) enforces deadlines:

* :class:`WatchdogSpec` -- parsed from ``repro-bench --watchdog SPEC``;
  per-stage wall-clock budgets on the *simulated* clock (``build`` and
  ``run``), plus the heartbeat period;
* :class:`Watchdog` -- armed by :meth:`BatchScheduler._start
  <repro.scheduler.base.BatchScheduler._start>` for every dispatched
  job.  It schedules heartbeat/progress events on the scheduler's own
  discrete-event queue (observability: every beat is recorded with the
  job's progress fraction) and one deadline event that cancels the job
  as :attr:`~repro.scheduler.job.JobState.HUNG` if it is still running
  -- freeing its allocation for the rest of the campaign.  HUNG is a
  *transient* failure, so the retry taxonomy re-attempts the case, and
  a transient ``hang`` fault clears on the retry.

Spec grammar (``--watchdog``)::

    SPEC  := SECONDS                      # run deadline only
           | PART (',' PART)*
    PART  := ('run' | 'build' | 'heartbeat') '=' SECONDS

Examples: ``--watchdog 600``, ``--watchdog run=600,build=300``,
``--watchdog run=120,heartbeat=10``.

Everything here runs on simulated time: deadlines are deterministic,
thread-independent, and a campaign with a watchdog never sleeps
wall-clock time waiting for one to fire.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.scheduler.job import JobState

__all__ = ["Watchdog", "WatchdogSpec", "WatchdogSpecError", "as_watchdog"]


class WatchdogSpecError(ValueError):
    """A malformed ``--watchdog`` specification."""


_STAGES = ("run", "build", "heartbeat")


@dataclass(frozen=True)
class WatchdogSpec:
    """Per-stage deadline budgets, in simulated seconds."""

    #: kill a job still running after this many sim-seconds (None: off)
    run: Optional[float] = None
    #: fail the build stage when its simulated duration exceeds this
    build: Optional[float] = None
    #: heartbeat/progress event period while a job runs
    heartbeat: float = 30.0

    def __post_init__(self) -> None:
        for name in ("run", "build"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise WatchdogSpecError(
                    f"watchdog {name} deadline must be > 0, got {value}"
                )
        if self.heartbeat <= 0:
            raise WatchdogSpecError(
                f"watchdog heartbeat must be > 0, got {self.heartbeat}"
            )

    @classmethod
    def parse(cls, text: str) -> "WatchdogSpec":
        """Parse a ``--watchdog`` string (grammar in the module docstring)."""
        text = text.strip()
        if not text:
            raise WatchdogSpecError("empty watchdog spec")
        values: Dict[str, float] = {}
        if "=" not in text:
            try:
                values["run"] = float(text)
            except ValueError:
                raise WatchdogSpecError(
                    f"bad watchdog spec {text!r}: expected SECONDS or "
                    f"'run=S,build=S[,heartbeat=S]'"
                ) from None
        else:
            for part in text.split(","):
                part = part.strip()
                if not part:
                    continue
                key, sep, raw = part.partition("=")
                key = key.strip()
                if not sep or key not in _STAGES:
                    raise WatchdogSpecError(
                        f"bad watchdog clause {part!r}; known stages: "
                        f"{', '.join(_STAGES)}"
                    )
                try:
                    values[key] = float(raw)
                except ValueError:
                    raise WatchdogSpecError(
                        f"bad watchdog seconds {raw!r} in {part!r}"
                    ) from None
        kwargs: Dict[str, Any] = {k: v for k, v in values.items()}
        return cls(**kwargs)

    def format(self) -> str:
        parts = []
        if self.run is not None:
            parts.append(f"run={self.run:g}")
        if self.build is not None:
            parts.append(f"build={self.build:g}")
        parts.append(f"heartbeat={self.heartbeat:g}")
        return ",".join(parts)


@dataclass
class HeartbeatEvent:
    """One observed heartbeat: provenance for hang forensics."""

    job: str
    elapsed: float
    progress: float


class Watchdog:
    """Deadline enforcement shared by every scheduler in one campaign.

    One instance is shared campaign-wide (cases may run on worker
    threads, each driving its own scheduler simulation), so counters are
    lock-protected.  Determinism: every decision depends only on the
    simulated clock of the scheduler that armed it, never on wall time
    or thread interleaving.
    """

    def __init__(self, spec: WatchdogSpec):
        self.spec = spec
        self._lock = threading.Lock()
        #: descriptions of every job killed as HUNG
        self.hung_jobs: List[str] = []
        #: build-stage budget violations (case display names)
        self.hung_builds: List[str] = []
        #: recorded heartbeat/progress events (most recent campaigns are
        #: small; tests and provenance read this)
        self.heartbeats: List[HeartbeatEvent] = []

    # -- accounting ----------------------------------------------------------
    @property
    def hung_count(self) -> int:
        with self._lock:
            return len(self.hung_jobs) + len(self.hung_builds)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "spec": self.spec.format(),
                "hung_jobs": list(self.hung_jobs),
                "hung_builds": list(self.hung_builds),
                "heartbeats_observed": len(self.heartbeats),
            }

    # -- scheduler side ------------------------------------------------------
    def arm(self, scheduler: Any, job_id: int) -> None:
        """Watch one just-started job on *scheduler*'s event queue.

        Schedules the heartbeat chain (progress observability) and, when
        a ``run`` deadline is configured, the kill event: if the job is
        still running at ``start + deadline`` it is cancelled as HUNG
        with the partial stdout it had produced.
        """
        start = scheduler.clock.now
        job = scheduler.job(job_id)
        name = job.name
        interval = self.spec.heartbeat
        trace = getattr(scheduler, "trace", None)
        # per-job entry tokens ([beat, kill]) kept on the scheduler, so
        # disarm() can cancel the pending events in place when the job
        # finishes -- no no-op events churn the heap, and the queue
        # drains at the finish instant.  The dict lives on the scheduler
        # (per-case, single-threaded); only the counters need the lock.
        armed = getattr(scheduler, "_watchdog_armed", None)
        if armed is None:
            armed = scheduler._watchdog_armed = {}
        holder: List[Any] = [None, None]
        armed[job_id] = holder

        def beat() -> None:
            progress = scheduler.job_progress(job_id)
            if progress is None:
                return  # finished or killed: stop the chain
            elapsed = scheduler.clock.now - start
            with self._lock:
                self.heartbeats.append(
                    HeartbeatEvent(job=name, elapsed=elapsed,
                                   progress=progress)
                )
            if trace is not None:
                trace.event("heartbeat", scheduler.clock.now, "watchdog",
                            job=name, progress=round(progress, 6))
            holder[0] = scheduler.events.schedule_in(interval, beat)

        holder[0] = scheduler.events.schedule_in(interval, beat)

        deadline = self.spec.run
        if deadline is None:
            return

        def kill() -> None:
            if not scheduler.is_running(job_id):
                return  # finished in time
            progress = scheduler.job_progress(job_id)
            reason = (
                f"{scheduler.kind.upper()}: watchdog killed job {job_id} "
                f"({name}): no completion after {deadline:g}s "
                f"(progress {progress:.1%})"
            )
            cancelled = scheduler.cancel(
                job_id, state=JobState.HUNG, reason=reason
            )
            if cancelled:
                with self._lock:
                    self.hung_jobs.append(f"{name}#{job_id}")
                if trace is not None:
                    trace.event("watchdog-kill", scheduler.clock.now,
                                "watchdog", job=name,
                                deadline=float(deadline))

        holder[1] = scheduler.events.schedule_in(deadline, kill)

    def disarm(self, scheduler: Any, job_id: int) -> None:
        """Cancel the pending heartbeat/deadline events for one job.

        Called by the scheduler when the job finishes or is cancelled;
        cancelling entries that already ran (including the kill event
        that triggered a cancel) is a harmless no-op.
        """
        armed = getattr(scheduler, "_watchdog_armed", None)
        if not armed:
            return
        holder = armed.pop(job_id, None)
        if holder is None:
            return
        for entry in holder:
            if entry is not None:
                scheduler.events.cancel(entry)

    def absorb(self, delta: Dict[str, Any]) -> None:
        """Merge per-case accounting from a worker-process watchdog.

        The process-pool policy runs each case against a private
        watchdog in the worker (the campaign instance cannot be shared
        across processes); the worker ships the accounting back with the
        result and the executor folds it in here, in the deterministic
        consumption order.
        """
        with self._lock:
            self.hung_jobs.extend(delta.get("hung_jobs", ()))
            self.hung_builds.extend(delta.get("hung_builds", ()))
            self.heartbeats.extend(delta.get("heartbeats", ()))

    # -- pipeline side -------------------------------------------------------
    def check_build(self, target: str, build_seconds: float) -> Optional[str]:
        """Build-stage budget: returns the violation message, or None.

        Called by the pipeline after the build completes (the simulation
        has no mid-build preemption point); a violation fails the build
        stage as hung -- transient, like a job hang, because on real
        systems a wedged build node is exactly as retryable as a wedged
        compute node.
        """
        budget = self.spec.build
        if budget is None or build_seconds <= budget:
            return None
        with self._lock:
            self.hung_builds.append(target)
        return (
            f"build hung: {build_seconds:g}s exceeds the watchdog build "
            f"budget ({budget:g}s)"
        )


def as_watchdog(value: Any) -> Optional[Watchdog]:
    """Coerce CLI/API input (str | WatchdogSpec | Watchdog) to a Watchdog."""
    if value is None or isinstance(value, Watchdog):
        return value
    if isinstance(value, WatchdogSpec):
        return Watchdog(value)
    return Watchdog(WatchdogSpec.parse(str(value)))
