"""``repro-bench``: the command-line front-end, mirroring ``reframe``.

The paper's appendix runs e.g.::

    reframe -c benchmarks/apps/babelstream -r --tag omp \
        --system=isambard-macs:cascadelake -S build_locally=false \
        -S spack_spec='babelstream%gcc@9.2.0 +omp'

the equivalent here::

    repro-bench -c babelstream -r --tag omp \
        --system=isambard-macs:cascadelake -S build_locally=false \
        -S spack_spec='babelstream%gcc@9.2.0 +omp'

Differences are cosmetic (``-c`` takes a benchmark suite name rather than
a path).  ``-n``/``-x`` filter by test name, ``-J`` passes scheduler
options such as ``--qos=standard`` / ``--account=t01``, ``--setvar`` and
``-S`` set test variables, ``--performance-report`` prints the FOM table,
``--list`` lists without running.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.runner.benchmark import REGISTRY

__all__ = ["main", "build_parser", "load_suite", "spec_from_args"]

#: benchmark suite name -> (module registering its tests, class filter).
#: A None filter takes every class the module registers.
SUITES = {
    "babelstream": ("repro.apps.babelstream.benchmark",
                    ("BabelStreamBenchmark",)),
    "stream": ("repro.apps.babelstream.benchmark", ("StreamBenchmark",)),
    "hpcg": ("repro.apps.hpcg.benchmark", None),
    "hpgmg": ("repro.apps.hpgmg.benchmark", None),
    "osu": ("repro.apps.osu.benchmark", None),
}


def load_suite(name: str) -> List[type]:
    """Import a suite module and return the test classes it registered."""
    import importlib

    # a user's own sweep file, reframe-style: repro-bench -c my_sweep.py
    if name.endswith(".py"):
        import importlib.util
        import os

        if not os.path.exists(name):
            raise KeyError(f"benchmark file {name!r} does not exist")
        mod_name = (
            "repro_suite_" + os.path.splitext(os.path.basename(name))[0]
        )
        spec = importlib.util.spec_from_file_location(mod_name, name)
        module = importlib.util.module_from_spec(spec)
        # register before exec so --policy=procs workers (forked later,
        # inheriting sys.modules) can resolve the classes by reference
        sys.modules[mod_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            del sys.modules[mod_name]
            raise KeyError(
                f"cannot load benchmark file {name!r}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        return [
            cls
            for cls in (REGISTRY.get(n) for n in REGISTRY.names())
            if cls.__module__ == mod_name
        ]

    # tolerate reframe-style paths: benchmarks/apps/babelstream
    key = name.rstrip("/").rsplit("/", 1)[-1]
    if key not in SUITES:
        raise KeyError(
            f"unknown benchmark suite {name!r}; known: "
            f"{', '.join(sorted(set(SUITES)))}"
        )
    module_name, only = SUITES[key]
    module = importlib.import_module(module_name)
    return [
        cls
        for cls in (REGISTRY.get(n) for n in REGISTRY.names())
        if cls.__module__ == module.__name__
        and (only is None or cls.__name__ in only)
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Automated, reproducible benchmarking (simulated platforms)",
    )
    parser.add_argument("-c", "--checkpath", action="append", default=[],
                        help="benchmark suite to load (babelstream/hpcg/hpgmg)")
    parser.add_argument("-r", "--run", action="store_true", help="run the tests")
    parser.add_argument("--list", action="store_true", help="list selected tests")
    parser.add_argument("--system", default=None,
                        help="target 'system[:partition]'; auto-detected otherwise")
    parser.add_argument("--site", action="append", default=[],
                        metavar="YAML",
                        help="merge extra system definitions from a site "
                             "YAML file (repeatable); lets a campaign "
                             "target fleets not in the built-in registry")
    parser.add_argument("-S", "--spack-var", action="append", default=[],
                        metavar="VAR=VAL", help="set a test variable (spack_spec=...)")
    parser.add_argument("--setvar", action="append", default=[],
                        metavar="VAR=VAL", help="set a test variable")
    parser.add_argument("-n", "--name", action="append", default=[],
                        help="only tests whose name matches")
    parser.add_argument("-x", "--exclude", action="append", default=[],
                        help="exclude tests whose name matches")
    parser.add_argument("--tag", action="append", default=[],
                        help="only tests carrying this tag")
    parser.add_argument("-J", "--job-option", action="append", default=[],
                        help="scheduler option, e.g. -J'--qos=standard'")
    parser.add_argument("--performance-report", action="store_true")
    parser.add_argument("--perflog-dir", default="perflogs",
                        help="perflog output prefix (default: ./perflogs)")
    parser.add_argument("--environ", action="append", default=[],
                        help="programming environment(s) to use")
    parser.add_argument("--dry-run", action="store_true",
                        help="concretize and render job scripts, run nothing")
    parser.add_argument("--policy", choices=["serial", "async", "procs"],
                        default="serial",
                        help="execution policy: 'serial' (one case at a "
                             "time), 'async' (dependency wavefronts on a "
                             "thread pool) or 'procs' (wavefronts on a "
                             "process pool, for CPU-bound non-Spack "
                             "campaigns); all deterministic with "
                             "serial-identical output)")
    parser.add_argument("-j", "--max-workers", type=int, default=4,
                        metavar="N",
                        help="worker pool size for --policy=async/procs "
                             "(default: 4)")
    # ---- resilience (DESIGN.md section 6) -------------------------------
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="retries per case for *transient* failures "
                             "(scheduler errors, build flakes, job "
                             "timeouts/node failures); 0 disables "
                             "(default: 2)")
    parser.add_argument("--max-failures", type=int, default=None,
                        metavar="N",
                        help="campaign circuit breaker: stop submitting "
                             "new cases after N case failures "
                             "(default: unlimited)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append every finished case to a crash-safe "
                             "JSONL campaign journal at PATH")
    parser.add_argument("--journal-batch", type=int, default=1,
                        metavar="N",
                        help="group-commit journal appends in batches of "
                             "N cases (same bytes, ~N x fewer fsyncs, "
                             "bounded tail-loss window; default: 1)")
    parser.add_argument("--resume", action="store_true",
                        help="with --journal: skip cases the journal "
                             "records as completed, re-run only "
                             "incomplete ones")
    # ---- incremental campaigns (DESIGN.md section 8) --------------------
    parser.add_argument("--result-store", default=None, metavar="DIR",
                        help="content-addressed whole-case result store: "
                             "cases whose composite address (spec, system, "
                             "benchmark source, run config) is unchanged "
                             "since a previous campaign are replayed from "
                             "DIR -- same perflog rows, spans and energy, "
                             "byte for byte -- and only the invalidated "
                             "delta re-executes")
    parser.add_argument("--cache-stats", action="store_true",
                        help="with --result-store: print hit/miss/"
                             "invalidation counters after the summary")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="deterministic chaos testing: inject faults "
                             "per SPEC, e.g. 'build:0.3,submit:0.2x2,"
                             "timeout@*hpcg*#1' (case kinds: build, "
                             "submit, timeout, hook, perflog, hang, slow, "
                             "sicknode) or storage faults with an "
                             "artifact glob, e.g. 'torn:0.05@journal,"
                             "enospc:0.01' (I/O kinds: enospc, eio, torn, "
                             "bitrot, fsync-lie; targets: journal, trace, "
                             "perflog, store, pack, index, ingest)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="N",
                        help="seed for --inject-faults selection and "
                             "backoff jitter (default: 0)")
    parser.add_argument("--durability", choices=["strict", "degrade"],
                        default="strict",
                        help="storage-failure policy (DESIGN.md section "
                             "6.6): 'strict' fail-stops on any artifact "
                             "write failure, naming the artifact; "
                             "'degrade' finishes the campaign without the "
                             "failing accelerator (result store, ingest "
                             "cache, trace) and reports what was absorbed "
                             "-- journals and perflogs always fail-stop "
                             "(default: strict)")
    # ---- slow faults (DESIGN.md section 6.4) ----------------------------
    parser.add_argument("--watchdog", default=None, metavar="SPEC",
                        help="per-stage deadlines on the simulated clock: "
                             "SECONDS (run deadline) or "
                             "'run=S,build=S[,heartbeat=S]'; a job past "
                             "its run budget is killed as HUNG "
                             "(transient, hence retried)")
    parser.add_argument("--speculate", action="store_true",
                        help="straggler mitigation: launch one "
                             "speculative duplicate for cases slower "
                             "than --straggler-factor x the running "
                             "median of completed peers; first completion "
                             "wins, only the winner is perflogged")
    parser.add_argument("--straggler-factor", type=float, default=2.0,
                        metavar="F",
                        help="speculation threshold multiplier over the "
                             "running median case duration (default: 2.0)")
    parser.add_argument("--drain-after", type=int, default=None,
                        metavar="N",
                        help="node health: softly drain a node after N "
                             "attributed fault events (hangs, failures, "
                             "degradations); state is journaled and "
                             "survives --resume (default: off)")
    # ---- observability (DESIGN.md section 7) ----------------------------
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="stream structured spans (pipeline stages, "
                             "scheduler lifecycle, retries, watchdog "
                             "events) to a crash-safe JSONL trace at PATH; "
                             "inspect with repro-trace.  Timestamps are "
                             "simulated seconds, so the file is "
                             "byte-identical across execution policies")
    parser.add_argument("--metrics", action="store_true",
                        help="collect campaign counters and duration "
                             "histograms and print the breakdown after "
                             "the summary (implied by --trace)")
    parser.add_argument("--live-status", default=None, metavar="PATH",
                        help="stream live windowed aggregates (per-system "
                             "throughput, latency percentiles, alerts) to "
                             "a sealed JSONL artifact at PATH while the "
                             "campaign runs; watch with repro-top PATH")
    parser.add_argument("--profile", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="profile the campaign with cProfile; print "
                             "the top functions by cumulative time, or "
                             "with PATH also save pstats data there for "
                             "snakeviz/pstats analysis")
    return parser


def _probe_writable_dir(path: str) -> Optional[str]:
    """``None`` if *path* is (creatable and) writable, else the reason.

    Probes with a real create-write-unlink cycle rather than
    ``os.access``: access bits lie on read-only mounts and over NFS
    root-squash, and a campaign must find out *now*, not at its first
    result commit.
    """
    import os

    try:
        os.makedirs(path, exist_ok=True)
        probe = os.path.join(path, f".probe-{os.getpid()}")
        fd = os.open(probe, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, b"probe")
        finally:
            os.close(fd)
            os.unlink(probe)
        return None
    except OSError as exc:
        return str(exc)


def spec_from_args(args: argparse.Namespace):
    """The parsed CLI namespace as an embeddable CampaignSpec."""
    from repro.fleet.service import CampaignSpec

    return CampaignSpec(
        suites=args.checkpath,
        system=args.system,
        site_yaml=args.site,
        setvar=args.setvar,
        spack_var=args.spack_var,
        name=args.name,
        exclude=args.exclude,
        tags=args.tag,
        job_options=args.job_option,
        environs=args.environ,
        perflog_dir=args.perflog_dir,
        policy=args.policy,
        max_workers=args.max_workers,
        max_retries=args.max_retries,
        max_failures=args.max_failures,
        journal=args.journal,
        journal_batch=args.journal_batch,
        result_store=args.result_store,
        inject_faults=args.inject_faults,
        fault_seed=args.fault_seed,
        durability=args.durability,
        watchdog=args.watchdog,
        speculate=args.speculate,
        straggler_factor=args.straggler_factor,
        drain_after=args.drain_after,
        trace=args.trace,
        metrics=args.metrics,
        live_status=args.live_status,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if not args.checkpath:
        parser.error("no benchmarks selected; use -c <suite>")

    try:
        classes = []
        for path in args.checkpath:
            classes.extend(load_suite(path))
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.list or not args.run:
        for cls in classes:
            for test in cls.variants():
                print(f"- {test.name} (tags: {', '.join(sorted(test.tags)) or '-'})")
        if not args.run:
            return 0

    if args.cache_stats and not args.result_store:
        print("error: --cache-stats requires --result-store DIR",
              file=sys.stderr)
        return 1

    # everything from here -- site/system resolution, variable parsing,
    # case expansion, flag validation, the run itself -- lives in the
    # embeddable CampaignService; repro-bench is one client of it, the
    # repro-fleet supervisor another
    from repro.fleet.service import CampaignConfigError, CampaignService

    service = CampaignService()
    try:
        prepared = service.prepare(spec_from_args(args), resume=args.resume)
    except CampaignConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.system is None and prepared.system is not None:
        print(f"auto-detected system: {prepared.system}")
    for warning in prepared.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    executor = prepared.executor
    if args.dry_run:
        from repro.runner.pipeline import dry_run_case

        for case in prepared.cases:
            print(dry_run_case(case))
        return 0

    def run_campaign():
        return prepared.run()

    try:
        if args.profile is not None:
            # --profile[=PATH]: answer "where did the campaign's wall
            # time go" without touching the campaign's own output
            # streams -- the report goes to stderr, and the raw pstats
            # data to PATH if given
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                report = run_campaign()
            finally:
                profiler.disable()
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative")
                print("== profile (top 25 by cumulative time) ==",
                      file=sys.stderr)
                stats.print_stats(25)
                if args.profile != "-":
                    stats.dump_stats(args.profile)
                    print(f"profile data: {args.profile}", file=sys.stderr)
        else:
            report = run_campaign()
    except ValueError as exc:
        # e.g. a campaign --policy=procs cannot carry (Spack builds,
        # sicknode faults, --drain-after)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.summary(), end="")
    if args.cache_stats and report.result_cache is not None:
        rc = report.result_cache
        print(
            "result store: "
            f"{rc['hits']} hit(s), {rc['misses']} miss(es), "
            f"{rc['invalidated']} invalidated, "
            f"{rc['corrupted']} corrupted, {rc['evictions']} evicted "
            f"(hit rate {100.0 * rc['hit_rate']:.1f}%)",
            file=sys.stderr,
        )
    if args.performance_report:
        print(report.performance_report(), end="")
    if args.metrics and report.metrics is not None:
        from repro.obs.cli import render_metrics

        print(render_metrics(report.metrics))
    if report.trace_path is not None:
        print(f"trace: {report.trace_path}")
    if args.live_status is not None:
        print(f"live status: {args.live_status} (watch with repro-top)")
    if executor.perflog and executor.perflog.written:
        print("perflogs:")
        for path in executor.perflog.written:
            print(f"  {path}")
    # exit-code contract (README "Exit codes"): 2 = the campaign ABORTED
    # (circuit breaker, durability failure) and its results are partial;
    # 1 = it ran to completion but some cases failed; 0 = clean.  Usage
    # and validation errors stay 1 (argparse's own errors are 2).
    if report.aborted is not None:
        return 2
    return 0 if report.success else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
