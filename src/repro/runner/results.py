"""Content-addressed whole-case result store: incremental campaigns.

The cold path is fast (PR 6), but continuous benchmarking re-runs the
same collection over and over with near-total redundancy -- the exaCB
move (PAPERS.md) is to content-address *entire case results* and
re-execute only the invalidated delta.  This module is that store:

* :class:`CaseResultStore` persists one JSON entry per **composite
  fingerprint** -- :func:`~repro.runner.resilience.content_address`
  over (case coordinates, concretization-problem hash from
  :meth:`~repro.pkgmgr.memo.ConcretizationCache.key_for`,
  :meth:`~repro.runner.config.SystemConfig.fingerprint`,
  :func:`~repro.runner.resilience.benchmark_source_hash`,
  :func:`~repro.runner.resilience.run_config_fingerprint`);
* an entry holds everything the executor's downstream consumers read
  from a finished case: the journal-shaped outcome record, stdout /
  run command / job script / build log, the rendered concrete spec,
  the case's **verbatim perflog lines** and its **verbatim encoded
  trace lines** -- enough for ``repro-bench --result-store DIR`` to
  *replay* the case byte-identically instead of re-running it;
* :class:`ResultStoreStats` mirrors the ``CacheStats`` /
  ``StoreStats`` accounting idiom (hits / misses / invalidated /
  corrupted / evictions), published to the metrics registry under
  ``resultstore.*``.

Durability follows the ``obs.jsonl`` philosophy: entries are written
atomically (temp + rename), and a torn or corrupted entry is a cache
*miss* plus a counter -- never a crash (the case simply re-executes and
the entry is rewritten).
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.runner.resilience import (
    benchmark_source_hash,
    case_fingerprint,
    content_address,
)

__all__ = [
    "CaseResultStore",
    "ResultStoreStats",
    "StoredSpec",
    "as_result_store",
    "make_entry",
    "replay_result",
]

#: entry schema version (bumped on incompatible changes; a version
#: mismatch is treated as a miss, exactly like corruption)
ENTRY_VERSION = 1


def _entry_checksum(entry: Dict[str, Any]) -> str:
    """CRC32 over the canonical (sort_keys) encoding of *entry*."""
    payload = json.dumps(entry, sort_keys=True)
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"


def _seal_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of *entry* carrying its ``cs`` self-verification field."""
    return {"cs": _entry_checksum(entry), **entry}


def _verify_entry(doc: Any) -> Optional[Dict[str, Any]]:
    """Strip + verify a sealed entry; ``None`` when damaged.

    Entries written before sealing existed (no ``cs``) are accepted
    as-is; a present-but-mismatched checksum means bit rot that plain
    JSON parsing would have served as plausible garbage.
    """
    if not isinstance(doc, dict):
        return None
    if "cs" not in doc:
        return doc
    doc = dict(doc)
    cs = doc.pop("cs")
    if _entry_checksum(doc) != cs:
        return None
    return doc


class ResultStoreStats:
    """Hit/miss accounting, same idiom as ``CacheStats``/``StoreStats``."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        #: misses where an *older* result for the same case identity
        #: exists under a different composite key -- i.e. the case was
        #: invalidated by an edit, not simply never seen
        self.invalidated = 0
        #: unreadable/torn/version-skewed entries tolerated as misses
        self.corrupted = 0
        self.evictions = 0
        self.puts = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "corrupted": self.corrupted,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": round(self.hit_rate, 4),
        }

    def publish(self, registry, prefix: str = "resultstore") -> None:
        """Fold the counters into a metrics registry namespace."""
        registry.merge_counts(prefix, self.as_dict())

    def __repr__(self) -> str:
        return (
            f"ResultStoreStats({self.hits} hits / {self.misses} misses, "
            f"{self.invalidated} invalidated)"
        )


class StoredSpec:
    """A rendered stand-in for a concrete Spec, replayed from the store.

    Provenance and the perflog formatter only ever call ``format()``,
    ``dag_hash()`` and ``dag_dict()`` on a result's ``concrete_spec``;
    this shim serves the strings the cold run's real Spec rendered, so
    a replayed case's provenance entry and perflog rows are identical
    without re-concretizing anything.
    """

    def __init__(self, doc: Dict[str, Any]):
        self._doc = doc

    def format(self, *, deps: bool = True, hashes: bool = False) -> str:
        if hashes:
            return self._doc.get("format_hashes", self._doc["format"])
        return self._doc["format"] if deps else self._doc["format_nodeps"]

    def dag_hash(self, length: int = 7) -> str:
        full = self._doc["dag_hash_full"]
        return full[:length]

    def dag_dict(self) -> Dict[str, Any]:
        return self._doc["dag_dict"]

    def __repr__(self) -> str:
        return f"StoredSpec({self._doc['format_nodeps']!r})"


def _spec_doc(spec: Any) -> Dict[str, Any]:
    """Serialize the renderings downstream consumers actually read."""
    return {
        "format": spec.format(),
        "format_nodeps": spec.format(deps=False),
        "format_hashes": spec.format(deps=True, hashes=True),
        "dag_hash_full": spec.dag_hash(length=64),
        "dag_dict": spec.dag_dict(),
    }


def make_entry(
    result: Any,
    key: str,
    run_id: str,
    record: Dict[str, Any],
    perflog: Optional[Dict[str, Any]] = None,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The persistent store entry for one freshly executed result.

    *record* is the journal-shaped outcome dict (the same bytes a
    ``CampaignJournal`` case record carries); *perflog* is
    ``{"relpath", "lines"}`` with the verbatim rows the cold run
    emitted; *trace* is ``{"first_id", "count", "end_time", "lines"}``
    -- the exact encoded span lines the cold run's tracer wrote, plus
    the global id of the first one, so replay can blit them verbatim
    (or shift ids by a constant when an upstream edit moved the
    sequence; see :class:`repro.obs.trace.ReplayedSpans`).
    """
    return {
        "version": ENTRY_VERSION,
        "key": key,
        "fingerprint": case_fingerprint(result.case),
        "case": result.case.display_name,
        "run_id": run_id,
        "record": record,
        "stdout": result.stdout,
        "run_command": result.run_command,
        "job_script": result.job_script,
        "build_log": list(result.build_log),
        "concretize_cache_hit": result.concretize_cache_hit,
        "spec": (
            _spec_doc(result.concrete_spec)
            if result.concrete_spec is not None else None
        ),
        "perflog": perflog,
        "trace": trace,
    }


def replay_result(case: Any, entry: Dict[str, Any]) -> Any:
    """Reconstruct a CaseResult from a store entry (``replayed=True``).

    Unlike a journal resume (``resumed=True``), a store replay *does*
    re-emit the case's perflog rows (the stored bytes) and re-flush its
    spans -- the warm run's artifacts must be byte-identical to a cold
    run's -- so the executor treats the result as fresh everywhere
    except execution itself.
    """
    from repro.runner.resilience import result_from_record

    result = result_from_record(case, entry["record"], resumed=False)
    result.replayed = True
    result.cached_from = entry.get("run_id")
    result.stdout = entry.get("stdout", "")
    result.run_command = entry.get("run_command", "")
    result.job_script = entry.get("job_script", "")
    result.build_log = list(entry.get("build_log") or [])
    result.concretize_cache_hit = entry.get("concretize_cache_hit")
    spec_doc = entry.get("spec")
    if spec_doc is not None:
        result.concrete_spec = StoredSpec(spec_doc)
    result._replay = entry
    return result


class CaseResultStore:
    """Persistent content-addressed store of whole-case results.

    Layout under *root* (all writes atomic temp+rename)::

        objects/<composite-key>.json    one entry per result content
        pack.jsonl                      sequential replica of entries
        index.json                      case identity -> its latest key

    The per-key object files are canonical: atomic, individually
    evictable, randomly addressable.  The **pack** is a git-packfile
    analogue -- the same entries as ``{"key", "entry"}`` lines in one
    append-only file -- loaded *once* per process so a warm campaign
    pays one sequential read instead of one open+parse per case.  A
    pack line is served only while its object file still exists (an
    ``os.stat``), so eviction stays authoritative; keys missing from
    the pack (a crash between object write and pack append, or entries
    from a pre-pack store) fall back to the per-file path.

    The identity index is what distinguishes *invalidated* (this case
    ran before, under different content -- an edit) from a plain miss
    (never seen), the counter the ISSUE wants reconciled against
    journal counts.  Both the index and the pack are maintained
    **write-behind**: puts buffer in memory and :meth:`flush` persists
    -- a handful of file writes per campaign instead of two per case,
    which at 5k cases is most of the put cost.  Lookups touch the
    entry's mtime so eviction (``max_entries``, oldest-mtime-first)
    approximates LRU.
    """

    #: write-behind safety valve: persist the identity index and the
    #: buffered pack lines every this many puts even if the campaign
    #: never reaches its final flush()
    INDEX_FLUSH_EVERY = 1024

    #: compact the pack (drop superseded/evicted lines) when it holds
    #: more than this many lines per live entry
    PACK_SLACK = 2

    def __init__(self, root: str, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.root = str(root)
        self.max_entries = max_entries
        self.stats = ResultStoreStats()
        self._objects = os.path.join(self.root, "objects")
        self._index_file = os.path.join(self.root, "index.json")
        self._pack_file = os.path.join(self.root, "pack.jsonl")
        os.makedirs(self._objects, exist_ok=True)
        #: fingerprint -> latest composite key (lazy-loaded)
        self._index: Optional[Dict[str, str]] = None
        self._index_dirty = 0
        #: key -> entry, the pack's content (lazy-loaded, last-wins)
        self._pack: Optional[Dict[str, Dict[str, Any]]] = None
        #: pack lines buffered in memory until the next flush()
        self._pack_pending: List[str] = []
        #: lines currently in the pack file (maintained after load)
        self._pack_lines = 0
        self._lock = threading.Lock()
        #: entry count, maintained incrementally after the initial scan
        self._count = sum(
            1 for name in os.listdir(self._objects)
            if name.endswith(".json")
        )
        # per-campaign key-component memos (system fingerprints and
        # package environments are invariant within one process run)
        self._system_keys: Dict[int, Tuple[Any, str]] = {}
        self._env_cache: Dict[str, Tuple[Any, Any]] = {}
        #: optional FaultyIO shim the write paths are routed through
        self._io: Optional[Any] = None

    def attach_io(self, io: Any) -> None:
        """Route object/pack/index writes through a FaultyIO shim."""
        self._io = io

    # -- key computation -----------------------------------------------------
    def _system_key(self, system: Any) -> str:
        memo = self._system_keys.get(id(system))
        if memo is not None and memo[0] is system:
            return memo[1]
        fingerprint = system.fingerprint()
        self._system_keys[id(system)] = (system, fingerprint)
        return fingerprint

    def _spec_key(self, case: Any) -> str:
        """The concretization *problem* content address (or '').

        Uses :meth:`ConcretizationCache.key_for` -- computable without
        solving, and (the solver being deterministic) equivalent to
        addressing by the solution.  Non-Spack cases have no spec
        component.
        """
        test = case.test
        spec_text = getattr(test, "spack_spec", "") or ""
        if not spec_text:
            return ""
        from repro.pkgmgr.concretizer import Concretizer
        from repro.pkgmgr.memo import ConcretizationCache
        from repro.pkgmgr.spec import Spec
        from repro.runner.pipeline import _pkg_environment

        cached = self._env_cache.get(case.platform)
        if cached is None:
            env = _pkg_environment(case.platform)
            repo = Concretizer(env=env).repo
            self._env_cache[case.platform] = cached = (env, repo)
        env, repo = cached
        spec = Spec(spec_text)
        if spec.compiler is None:
            environ = case.partition.environ(case.environ_name)
            spec = spec.constrain(Spec(f"%{environ.compiler_spec}"))
        return ConcretizationCache.key_for(spec, env, repo)

    def key_for(self, case: Any, config_key: str = "") -> str:
        """The composite content address of one case's result."""
        return content_address(
            case,
            spec_key=self._spec_key(case),
            system_key=self._system_key(case.system),
            source_key=benchmark_source_hash(type(case.test)),
            config_key=config_key,
        )

    # -- paths ---------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self._objects, f"{key}.json")

    def _write_atomic(self, path: str, doc: Dict[str, Any],
                      label: str = "store") -> None:
        if self._io is not None:
            # compact separators: entries are read back on every warm
            # lookup, and parse time scales with the bytes
            body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
            self._io.write_atomic(path, body, label, sync=False)
            return
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
        os.replace(tmp, path)

    # -- identity index (write-behind) ---------------------------------------
    def _load_index_locked(self) -> Dict[str, str]:
        if self._index is None:
            try:
                with open(self._index_file, encoding="utf-8") as fh:
                    loaded = json.load(fh)
                self._index = (
                    {str(k): str(v) for k, v in loaded.items()}
                    if isinstance(loaded, dict) else {}
                )
            except (OSError, ValueError):
                # missing or torn: the index is advisory, start fresh
                self._index = {}
        return self._index

    def _flush_index_locked(self) -> None:
        if self._index is not None and self._index_dirty:
            self._write_atomic(self._index_file, self._index, label="index")
            self._index_dirty = 0

    # -- pack (write-behind entry replica) -----------------------------------
    def _load_pack_locked(self) -> Dict[str, Dict[str, Any]]:
        if self._pack is None:
            pack: Dict[str, Dict[str, Any]] = {}
            lines: List[str] = []
            try:
                with open(self._pack_file, encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
            except OSError:
                pass
            docs: List[Any] = []
            if lines:
                try:
                    # one decoder call for the whole pack (a clean file is
                    # the common case and this is ~4x faster than a
                    # per-line loop at campaign scale)
                    docs = json.loads("[" + ",".join(lines) + "]")
                except ValueError:
                    # torn tail / stray line somewhere: fall back to the
                    # tolerant per-line parse
                    for line in lines:
                        try:
                            docs.append(json.loads(line))
                        except ValueError:
                            continue
            for doc in docs:
                try:
                    pack[str(doc["key"])] = doc["entry"]
                except (KeyError, TypeError):
                    continue
            self._pack = pack
            self._pack_lines = len(lines)
        return self._pack

    def _flush_pack_locked(self) -> None:
        if not self._pack_pending:
            return
        if self._io is not None:
            self._io.append(
                self._pack_file,
                "".join(self._pack_pending).encode("utf-8"),
                "pack",
                sync=False,
            )
        else:
            with open(self._pack_file, "a", encoding="utf-8") as fh:
                fh.write("".join(self._pack_pending))
        self._pack_lines += len(self._pack_pending)
        self._pack_pending = []
        # compact when superseded/evicted lines dominate -- needs the
        # pack in memory, so only bother once something loaded it
        if self._pack is not None and self._pack_lines > max(
            self.PACK_SLACK * len(self._pack), 16
        ):
            self._compact_pack_locked()

    def _compact_pack_locked(self) -> None:
        pack = self._load_pack_locked()
        live = {
            key: entry for key, entry in pack.items()
            if os.path.exists(self._entry_path(key))
        }
        body = "".join(
            json.dumps({"key": key, "entry": entry},
                       separators=(",", ":")) + "\n"
            for key, entry in live.items()
        )
        if self._io is not None:
            self._io.write_atomic(self._pack_file, body.encode("utf-8"),
                                  "pack", sync=False)
        else:
            tmp = f"{self._pack_file}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self._pack_file)
        self._pack = live
        self._pack_lines = len(live)

    def flush(self) -> None:
        """Persist the write-behind index and pack (end of campaign)."""
        with self._lock:
            self._flush_index_locked()
            self._flush_pack_locked()

    # -- lookup / put --------------------------------------------------------
    def lookup(
        self,
        key: str,
        fingerprint: Optional[str] = None,
        need_perflog: bool = False,
        need_spans: bool = False,
    ) -> Optional[Dict[str, Any]]:
        """The stored entry for *key*, or ``None`` (a miss).

        An unreadable or version-skewed entry is a tolerated miss
        (``corrupted`` counter); an entry lacking an artifact this
        campaign needs (perflog rows while perflogs are armed, trace
        lines while tracing) is also a miss -- the case re-executes and
        the rewritten entry carries the missing artifact.  On a miss,
        *fingerprint* (when given) classifies it: an identity-index
        entry pointing at a *different* key means the case was seen
        before and an edit invalidated it.

        Entries are served from the pack when it has them (one
        sequential load for the whole campaign, validated against the
        object file's existence so eviction is respected); otherwise
        from the per-key object file.
        """
        path = self._entry_path(key)
        with self._lock:
            mtime: Optional[float] = None
            entry = self._load_pack_locked().get(key)
            if entry is not None:
                try:
                    mtime = os.stat(path).st_mtime
                except OSError:
                    # evicted (or never-landed) object: the pack line
                    # is stale, the object files are canonical
                    self._pack.pop(key, None)
                    entry = None
                if entry is not None and (
                    not isinstance(entry, dict)
                    or entry.get("version") != ENTRY_VERSION
                ):
                    entry = None  # skewed replica: fall back to the file
                if entry is not None:
                    # self-verification: a rotted pack line falls back to
                    # the (independently sealed) object file
                    entry = _verify_entry(entry)
            if entry is None:
                try:
                    with open(path, encoding="utf-8") as fh:
                        entry = json.load(fh)
                    entry = _verify_entry(entry)
                    if entry is None:
                        raise ValueError("entry checksum mismatch")
                    if entry.get("version") != ENTRY_VERSION:
                        raise ValueError(
                            f"entry version {entry.get('version')!r}"
                        )
                except FileNotFoundError:
                    entry = None
                except (OSError, ValueError):
                    # torn/corrupted entry: tolerate as a miss, drop the
                    # file so the re-executed case rewrites it cleanly
                    self.stats.corrupted += 1
                    entry = None
                    try:
                        os.unlink(path)
                        self._count -= 1
                    except OSError:
                        pass
            if entry is not None and (
                (need_perflog and entry.get("perflog") is None)
                or (need_spans and entry.get("trace") is None)
            ):
                entry = None  # incomplete for this campaign's needs
            if entry is None:
                self.stats.misses += 1
                if fingerprint:
                    self._note_invalidation(fingerprint, key)
                return None
            self.stats.hits += 1
            # LRU touch for mtime-ordered eviction.  A recently-touched
            # entry (this campaign, or one earlier today) is already at
            # the young end of the eviction order -- skipping its utime
            # saves one syscall per hit without changing which entries
            # an eviction pass would pick.
            if mtime is None or time.time() - mtime > 3600.0:
                try:
                    os.utime(path)
                except OSError:
                    pass
            return entry

    def _note_invalidation(self, fingerprint: str, key: str) -> None:
        """Classify a miss: invalidated (seen before, edited) or new."""
        known = self._load_index_locked().get(fingerprint)
        if known is not None and known != key:
            self.stats.invalidated += 1

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Persist one entry (atomic), update the index and pack, evict."""
        path = self._entry_path(key)
        sealed = _seal_entry(entry)
        with self._lock:
            existed = os.path.exists(path)
            self._write_atomic(path, sealed, label="store")
            if not existed:
                self._count += 1
            self.stats.puts += 1
            self._pack_pending.append(json.dumps(
                {"key": key, "entry": sealed}, separators=(",", ":")
            ) + "\n")
            if self._pack is not None:
                self._pack[key] = sealed
            fingerprint = entry.get("fingerprint")
            if fingerprint:
                index = self._load_index_locked()
                if index.get(fingerprint) != key:
                    index[fingerprint] = key
                    self._index_dirty += 1
            if (self._index_dirty >= self.INDEX_FLUSH_EVERY
                    or len(self._pack_pending) >= self.INDEX_FLUSH_EVERY):
                self._flush_index_locked()
                self._flush_pack_locked()
            if self.max_entries is not None:
                self._evict_locked()

    def _evict_locked(self) -> None:
        if self._count <= self.max_entries:
            return
        aged: List[Tuple[float, str]] = []
        for name in os.listdir(self._objects):
            if not name.endswith(".json"):
                continue
            full = os.path.join(self._objects, name)
            try:
                aged.append((os.path.getmtime(full), full))
            except OSError:
                continue
        aged.sort()
        excess = len(aged) - self.max_entries
        for _, full in aged[:excess]:
            try:
                os.unlink(full)
                self.stats.evictions += 1
            except OSError:
                continue
        self._count = min(self._count, self.max_entries)

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def __repr__(self) -> str:
        return (
            f"CaseResultStore({self.root!r}, {len(self)} entries, "
            f"{self.stats.hits} hits / {self.stats.misses} misses)"
        )


StoreLike = Union[str, CaseResultStore]


def as_result_store(store: Optional[StoreLike]) -> Optional[CaseResultStore]:
    """Coerce CLI/API input (path | store | None) to a store."""
    if store is None or isinstance(store, CaseResultStore):
        return store
    return CaseResultStore(str(store))
