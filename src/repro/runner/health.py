"""Node-health scoring and drain decisions (DESIGN.md section 6.4).

A degraded node does not fail loudly -- it completes work slowly,
poisoning every case the scheduler places on it.  Production fleets
handle this with health scoring and drain lists; this module is that
layer for the simulated platforms:

* every finished job *attributes* its outcome to the nodes it ran on
  (:meth:`~repro.scheduler.base.BatchScheduler._attribute_health`):
  hangs, node failures, sicknode degradations and straggles are faults,
  clean completions are credits;
* each node keeps an EWMA health score in ``[0, 1]``
  (``score' = (1 - alpha) * score + alpha * outcome`` with outcome 1 for
  a credit, 0 for a fault) plus a cumulative *strike* count;
* a node whose strikes reach ``--drain-after N`` is **drained**: the
  allocation layer (:class:`~repro.scheduler.allocation.NodePool`) stops
  placing work on it except as a last resort (soft drain -- a mostly-
  drained pool still completes campaigns rather than deadlocking);
* the whole tracker snapshots to/from JSON, is persisted in the campaign
  journal whenever it changes, and is restored on ``--resume`` -- a
  node drained before a crash stays drained after it -- and lands in the
  run provenance.

Determinism: scores and strikes change only in response to simulated-
scheduler events, which are themselves deterministic; the tracker is
lock-protected because async campaigns drive schedulers from worker
threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["HealthTracker", "NodeHealth"]

#: EWMA smoothing factor: one fault drops a pristine node to 0.7, three
#: consecutive faults to ~0.34 -- fast enough to react within a handful
#: of jobs, slow enough that one unlucky straggle does not condemn a node
DEFAULT_ALPHA = 0.3


@dataclass
class NodeHealth:
    """Per-node fault/straggler history."""

    node: str
    #: EWMA health score in [0, 1]; 1.0 = pristine
    score: float = 1.0
    #: cumulative fault events (hang/fail/sick/slow) -- the drain counter
    strikes: int = 0
    #: cumulative clean completions
    credits: int = 0
    #: the most recent fault kind observed ('' if none)
    last_fault: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "score": round(self.score, 6),
            "strikes": self.strikes,
            "credits": self.credits,
            "last_fault": self.last_fault,
        }


class HealthTracker:
    """Campaign-wide node-health ledger with an optional drain threshold.

    ``drain_after=None`` scores but never drains (observability only);
    ``drain_after=N`` drains a node on its N-th strike.  The tracker is
    shared across every per-case scheduler instance in a campaign --
    node *names* are stable per partition, so history accumulates even
    though each case simulates a fresh queue.
    """

    def __init__(
        self,
        drain_after: Optional[int] = None,
        alpha: float = DEFAULT_ALPHA,
    ):
        if drain_after is not None and drain_after < 1:
            raise ValueError("drain_after must be >= 1 (or None)")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.drain_after = drain_after
        self.alpha = alpha
        self._nodes: Dict[str, NodeHealth] = {}
        self._drained: List[str] = []
        self._lock = threading.Lock()
        #: set whenever state changes; the executor journals a snapshot
        #: and clears it (crash-safe persistence without spamming lines)
        self._dirty = False

    # -- event intake --------------------------------------------------------
    def _entry(self, node: str) -> NodeHealth:
        entry = self._nodes.get(node)
        if entry is None:
            entry = NodeHealth(node=node)
            self._nodes[node] = entry
        return entry

    def record_fault(self, node: str, kind: str) -> None:
        """One slow/fail event attributed to *node* (EWMA toward 0)."""
        with self._lock:
            entry = self._entry(node)
            entry.score = (1.0 - self.alpha) * entry.score
            entry.strikes += 1
            entry.last_fault = kind
            self._dirty = True
            if (
                self.drain_after is not None
                and entry.strikes >= self.drain_after
                and node not in self._drained
            ):
                self._drained.append(node)
                self._drained.sort()

    def record_ok(self, node: str) -> None:
        """One clean completion on *node* (EWMA toward 1)."""
        with self._lock:
            entry = self._entry(node)
            entry.score = (1.0 - self.alpha) * entry.score + self.alpha
            entry.credits += 1
            self._dirty = True

    # -- queries -------------------------------------------------------------
    def is_drained(self, node: str) -> bool:
        with self._lock:
            return node in self._drained

    def any_drained(self) -> bool:
        """O(1) check the allocator uses to skip the health partition.

        On an all-healthy pool (the overwhelmingly common case) no
        per-node ``is_drained`` calls are needed at all.
        """
        with self._lock:
            return bool(self._drained)

    @property
    def drained(self) -> List[str]:
        with self._lock:
            return list(self._drained)

    def score(self, node: str) -> float:
        with self._lock:
            entry = self._nodes.get(node)
            return 1.0 if entry is None else entry.score

    def strikes(self, node: str) -> int:
        with self._lock:
            entry = self._nodes.get(node)
            return 0 if entry is None else entry.strikes

    @property
    def dirty(self) -> bool:
        with self._lock:
            return self._dirty

    # -- persistence ---------------------------------------------------------
    def snapshot(self, clear_dirty: bool = True) -> Dict[str, Any]:
        """JSON-able state (journal / provenance payload)."""
        with self._lock:
            snap = {
                "drain_after": self.drain_after,
                "alpha": self.alpha,
                "drained": list(self._drained),
                "nodes": {
                    name: entry.as_dict()
                    for name, entry in sorted(self._nodes.items())
                },
            }
            if clear_dirty:
                self._dirty = False
            return snap

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Merge a journal snapshot back in (``--resume``).

        Restored state *merges* with (rather than replaces) anything
        already recorded, keeping the worse view of each node: max
        strikes, min score -- a node drained before the crash stays
        drained after it.
        """
        with self._lock:
            for name, payload in (snapshot.get("nodes") or {}).items():
                entry = self._entry(name)
                entry.score = min(entry.score,
                                  float(payload.get("score", 1.0)))
                entry.strikes = max(entry.strikes,
                                    int(payload.get("strikes", 0)))
                entry.credits = max(entry.credits,
                                    int(payload.get("credits", 0)))
                entry.last_fault = (
                    str(payload.get("last_fault", "")) or entry.last_fault
                )
            for node in snapshot.get("drained") or []:
                if node not in self._drained:
                    self._drained.append(node)
            self._drained.sort()
            # re-derive drains the snapshot predates (e.g. a lowered
            # --drain-after on the resumed invocation)
            if self.drain_after is not None:
                for name, entry in self._nodes.items():
                    if (
                        entry.strikes >= self.drain_after
                        and name not in self._drained
                    ):
                        self._drained.append(name)
                self._drained.sort()

    def as_dict(self) -> Dict[str, Any]:
        """Provenance payload (never clears the dirty flag)."""
        return self.snapshot(clear_dirty=False)
