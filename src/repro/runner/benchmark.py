"""The benchmark base classes: :class:`RegressionTest` and :class:`SpackTest`.

A benchmark is a Python class, exactly as in ReFrame: it declares *what*
to build (``spack_spec``), *what* to run (``executable``,
``executable_opts``), the parallel layout (``num_tasks`` and friends), how
to check correctness (:meth:`check_sanity`) and which Figures of Merit to
extract (:meth:`extract_performance`).  Everything system-specific is
injected by the pipeline at setup time (``current_system`` etc.), so the
same benchmark runs unmodified on every configured platform -- the
portability property Section 2.3 of the paper builds on.

Because the platforms here are simulated, a benchmark also provides
:meth:`program`: the *application itself* -- real (numpy) kernels whose
timing comes from the machine model -- returning the stdout that the
sanity/performance regexes then parse, exactly as they would parse a real
program's output.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.machine.progmodel import ProgrammingModelDB, default_model_db
from repro.runner.config import EnvironConfig, PartitionConfig, SystemConfig
from repro.runner.fields import parameter_space, variable
from repro.runner.sanity import SanityError, assert_found
from repro.systems.hardware import NodeSpec

__all__ = [
    "BenchmarkError",
    "ProgramContext",
    "RegressionTest",
    "SpackTest",
    "TestRegistry",
    "rfm_test",
    "run_before",
    "run_after",
]


class BenchmarkError(Exception):
    """Raised for malformed benchmark definitions."""


@dataclass
class ProgramContext:
    """Everything the simulated application sees when it 'executes'."""

    system: str
    partition: str
    environ: str
    node: NodeSpec
    num_tasks: int
    num_tasks_per_node: Optional[int]
    num_cpus_per_task: int
    compiler: str
    compiler_version: str
    spec: Any = None  # concrete Spec for SpackTests
    model_db: ProgrammingModelDB = field(default_factory=default_model_db)

    @property
    def platform(self) -> str:
        return f"{self.system}:{self.partition}"

    @property
    def num_nodes(self) -> int:
        if self.num_tasks_per_node:
            import math

            return math.ceil(self.num_tasks / self.num_tasks_per_node)
        return 1


def run_before(stage: str):
    """Decorator marking a method as a pre-stage hook (ReFrame-style)."""

    def deco(fn):
        fn._rfm_hook = ("before", stage)
        return fn

    return deco


def run_after(stage: str):
    """Decorator marking a method as a post-stage hook."""

    def deco(fn):
        fn._rfm_hook = ("after", stage)
        return fn

    return deco


class RegressionTest:
    """Base class of all benchmarks."""

    #: short human description
    descr = variable(str, value="")
    #: systems/partitions this test may run on; fnmatch patterns over
    #: 'system:partition' ('*' matches everything)
    valid_systems = variable(list, value=["*"])
    #: programming environments this test may use
    valid_prog_environs = variable(list, value=["default"])
    executable = variable(str, value="")
    executable_opts = variable(list, value=[])
    num_tasks = variable(int, value=1)
    num_tasks_per_node = variable(int, value=None)
    num_cpus_per_task = variable(int, value=1)
    time_limit = variable(float, int, value=3600.0)
    #: free-form labels selectable with --tag
    tags: set = set()
    #: reference FOMs: {'system:partition': {var: (ref, lofrac, hifrac, unit)}}
    reference: Dict[str, Dict[str, Tuple]] = {}
    #: names of tests that must pass on the same platform first (ReFrame
    #: test dependencies); their CaseResults appear in
    #: :attr:`dependency_results` before this test's pipeline runs
    depends_on_tests: Tuple[str, ...] = ()
    #: injected by the executor when depends_on_tests is non-empty
    dependency_results: Dict[str, Any] = {}

    # injected by the pipeline at setup
    current_system: Optional[SystemConfig] = None
    current_partition: Optional[PartitionConfig] = None
    current_environ: Optional[EnvironConfig] = None

    def __init__(self, **params: Any):
        for name, value in params.items():
            self.__dict__[name] = value
        self._param_values = dict(params)

    # -- identity ------------------------------------------------------------
    @classmethod
    def base_name(cls) -> str:
        return cls.__name__

    @classmethod
    def name_for_params(cls, params: Dict[str, Any]) -> str:
        """The instance name a parameter point *would* produce.

        Lets the executor filter variants by name *before* constructing
        any test instance (hot when ``-n``/``-x`` prune a large campaign).
        """
        if not params:
            return cls.base_name()
        suffix = "_".join(
            str(v).replace("-", "_") for _, v in sorted(params.items())
        )
        return f"{cls.base_name()}_{suffix}"

    @property
    def name(self) -> str:
        # params are fixed at construction, so the name is computed once;
        # campaign-scale hot paths (perflog rows, trace tracks, store
        # keys) all read it per case
        cached = self.__dict__.get("_name")
        if cached is None:
            cached = type(self).name_for_params(self._param_values)
            self.__dict__["_name"] = cached
        return cached

    @classmethod
    def variants(cls, **fixed: Any) -> List["RegressionTest"]:
        """One instance per point of the parameter space."""
        out = []
        for point in parameter_space(cls):
            point.update(fixed)
            out.append(cls(**point))
        return out

    # -- hooks ----------------------------------------------------------------
    def hooks(self, when: str, stage: str) -> List[Callable[[], None]]:
        found = []
        for klass in reversed(type(self).__mro__):
            for attr in vars(klass).values():
                if getattr(attr, "_rfm_hook", None) == (when, stage):
                    found.append(getattr(self, attr.__name__))
        return found

    # -- validity ----------------------------------------------------------------
    def supports_platform(self, system: str, partition: str) -> bool:
        target = f"{system}:{partition}"
        for pat in self.valid_systems:
            if pat == "*" or fnmatch.fnmatch(target, pat) or pat == system:
                return True
        return False

    def supports_environ(self, environ: str) -> bool:
        return any(
            pat == "*" or fnmatch.fnmatch(environ, pat)
            for pat in self.valid_prog_environs
        )

    # -- what subclasses implement --------------------------------------------------
    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        """Run the (simulated) application: returns (stdout, seconds)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement program()"
        )

    def check_sanity(self, stdout: str) -> None:
        """Raise :class:`SanityError` unless the output is valid."""
        assert_found(r"\S", stdout, "program produced no output")

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        """FOMs from output: name -> (value, unit)."""
        return {}

    # -- reference checking ------------------------------------------------------------
    def check_references(
        self, platform: str, perfvars: Dict[str, Tuple[float, str]]
    ) -> None:
        from repro.runner.sanity import assert_reference

        for pattern, expectations in self.reference.items():
            if not fnmatch.fnmatch(platform, pattern):
                continue
            for var, (ref, lo, hi, _unit) in expectations.items():
                if var not in perfvars:
                    raise SanityError(
                        f"reference declared for missing FOM {var!r}"
                    )
                assert_reference(perfvars[var][0], ref, lo, hi)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SpackTest(RegressionTest):
    """A benchmark built through the package manager (the framework's way).

    The paper's framework extends ReFrame with "a ReFrame class to
    streamline the integration with the Spack environments provided by
    our framework": selecting the system picks the right Spack
    environment automatically.  Here the pipeline resolves
    ``spack_spec`` against the system's environment and installs it
    (freshly, every run -- Principle 3) before the run stage.
    """

    #: the abstract spec to concretize; -S spack_spec=... overrides
    spack_spec = variable(str, value="")
    #: build the root even if cached (Principle 3); -S build_locally=false
    #: in the paper's invocations maps to keeping this True on the remote
    rebuild = variable(bool, value=True)

    def effective_spec(self) -> str:
        if not self.spack_spec:
            raise BenchmarkError(
                f"{self.name}: SpackTest without a spack_spec"
            )
        return self.spack_spec


class TestRegistry:
    """Global registry of benchmark classes (what ``-c`` selects from)."""

    def __init__(self):
        self._tests: Dict[str, Type[RegressionTest]] = {}

    def register(self, cls: Type[RegressionTest]) -> Type[RegressionTest]:
        if not issubclass(cls, RegressionTest):
            raise BenchmarkError(f"{cls!r} is not a RegressionTest")
        self._tests[cls.base_name()] = cls
        return cls

    def get(self, name: str) -> Type[RegressionTest]:
        if name not in self._tests:
            raise BenchmarkError(
                f"unknown benchmark {name!r}; registered: "
                f"{', '.join(sorted(self._tests))}"
            )
        return self._tests[name]

    def names(self) -> List[str]:
        return sorted(self._tests)

    def select(
        self,
        name_patterns: Optional[List[str]] = None,
        exclude: Optional[List[str]] = None,
        tags: Optional[List[str]] = None,
    ) -> List[Type[RegressionTest]]:
        """Filter registered tests the way reframe -n/-x/--tag does."""
        out = []
        for name in self.names():
            cls = self._tests[name]
            if name_patterns and not any(
                fnmatch.fnmatch(name, p) or p in name for p in name_patterns
            ):
                continue
            if exclude and any(
                fnmatch.fnmatch(name, p) or p in name for p in exclude
            ):
                continue
            if tags and not set(tags) <= set(cls.tags):
                continue
            out.append(cls)
        return out


#: the default global registry used by @rfm_test and the CLI
REGISTRY = TestRegistry()


def rfm_test(cls: Type[RegressionTest]) -> Type[RegressionTest]:
    """Class decorator registering a benchmark (ReFrame's @simple_test)."""
    return REGISTRY.register(cls)
