"""Site configuration: the runner's view of systems, partitions, environments.

This is ReFrame's ``settings.py`` equivalent.  The default site config is
*generated* from :mod:`repro.systems.registry` so hardware truth lives in
exactly one place; a YAML file with the same shape can extend or override
it (the paper's framework ships such configs per system, and "once a
system is added to the configuration ... it can be shared with others").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import yaml

from repro.systems.hardware import NodeSpec
from repro.systems.registry import (
    SYSTEMS,
    SystemDescription,
    UnknownSystemError,
)

__all__ = [
    "EnvironConfig",
    "PartitionConfig",
    "SystemConfig",
    "SiteConfig",
    "default_site_config",
    "ConfigError",
]


class ConfigError(Exception):
    """Malformed site configuration."""


@dataclass
class EnvironConfig:
    """A programming environment: a named compiler personality."""

    name: str
    compiler: str  # package-manager compiler name, e.g. 'gcc'
    compiler_version: Optional[str] = None
    cflags: Tuple[str, ...] = ()
    modules: Tuple[str, ...] = ()

    @property
    def compiler_spec(self) -> str:
        if self.compiler_version:
            return f"{self.compiler}@{self.compiler_version}"
        return self.compiler


@dataclass
class PartitionConfig:
    """One scheduler-addressable slice of a system."""

    name: str
    node: NodeSpec
    scheduler: str
    launcher: str
    num_nodes: int
    environs: List[EnvironConfig] = field(default_factory=list)
    access: Tuple[str, ...] = ()

    @property
    def cores_per_node(self) -> int:
        return self.node.total_cores

    def environ(self, name: str) -> EnvironConfig:
        for env in self.environs:
            if env.name == name:
                return env
        raise ConfigError(
            f"partition {self.name!r} has no environment {name!r} "
            f"(has: {', '.join(e.name for e in self.environs)})"
        )


@dataclass
class SystemConfig:
    name: str
    description: str
    partitions: Dict[str, PartitionConfig]
    hostname_patterns: Tuple[str, ...] = ()
    requires_account: bool = False
    requires_qos: bool = False
    #: account/QoS jobs fall back to when the command line passes none --
    #: the per-system accounting knowledge the paper's appendix insists
    #: lives in configuration, not in the runner.  A system that requires
    #: an account but has no default fails admission control cleanly.
    default_account: Optional[str] = None
    default_qos: Optional[str] = None

    def fingerprint(self) -> str:
        """Content hash of everything about this system that shapes results.

        Feeds the result store's composite key (DESIGN.md "Incremental
        campaigns"): a changed scheduler, node count, hardware spec,
        programming environment or accounting default must invalidate
        stored case results for this system.  Cosmetics (``description``,
        ``hostname_patterns``) are excluded -- renaming a login-node
        glob must *not* re-run a fleet.  Built from sorted-key JSON over
        frozen-dataclass reprs, so the hash is stable across processes
        and dict insertion orders.
        """
        import hashlib
        import json

        doc = {
            "name": self.name,
            "requires_account": self.requires_account,
            "requires_qos": self.requires_qos,
            "default_account": self.default_account,
            "default_qos": self.default_qos,
            "partitions": {
                pname: {
                    "node": repr(part.node),
                    "scheduler": part.scheduler,
                    "launcher": part.launcher,
                    "num_nodes": part.num_nodes,
                    "access": list(part.access),
                    "environs": [
                        {
                            "name": env.name,
                            "compiler": env.compiler_spec,
                            "cflags": list(env.cflags),
                            "modules": list(env.modules),
                        }
                        for env in part.environs
                    ],
                }
                for pname, part in sorted(self.partitions.items())
            },
        }
        blob = json.dumps(doc, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def partition(self, name: Optional[str] = None) -> PartitionConfig:
        if name is None:
            return next(iter(self.partitions.values()))
        if name not in self.partitions:
            raise ConfigError(
                f"system {self.name!r} has no partition {name!r} "
                f"(has: {', '.join(self.partitions)})"
            )
        return self.partitions[name]


class SiteConfig:
    """All systems the framework knows how to benchmark on."""

    def __init__(self, systems: Optional[Dict[str, SystemConfig]] = None):
        self.systems: Dict[str, SystemConfig] = dict(systems or {})

    def add(self, system: SystemConfig) -> None:
        self.systems[system.name] = system

    def get(self, qualified: str) -> Tuple[SystemConfig, PartitionConfig]:
        """Resolve ``'system'`` or ``'system:partition'``."""
        sysname, _, part = qualified.partition(":")
        if sysname not in self.systems:
            raise UnknownSystemError(
                f"unknown system {sysname!r}; configured: "
                f"{', '.join(sorted(self.systems))}"
            )
        system = self.systems[sysname]
        return system, system.partition(part or None)

    def detect(self, hostname: str) -> Optional[str]:
        """Auto-detect the system from a hostname.

        Returns None when zero or multiple systems match -- the ambiguity
        the paper's appendix warns about ("explicitly naming the system
        with the --system command line option helps avoid some errors").
        """
        import fnmatch

        hits = [
            name
            for name, system in self.systems.items()
            if any(
                fnmatch.fnmatch(hostname, pat)
                for pat in system.hostname_patterns
            )
        ]
        if len(hits) == 1:
            return hits[0]
        return None

    def merge_yaml(self, text: str) -> None:
        """Add systems from a YAML document (new systems only, no hardware).

        Unknown systems get local scheduling and a generic environment --
        mirroring the framework's 'basic environment' behaviour for systems
        it does not support yet.
        """
        try:
            doc = yaml.safe_load(text) or {}
        except yaml.YAMLError as exc:
            raise ConfigError(f"bad YAML site config: {exc}") from exc
        for entry in doc.get("systems", []):
            if "name" not in entry:
                raise ConfigError("system entry without a name")
            from repro.systems.registry import EPYC_MILAN_7763, MEM_MILAN

            node = NodeSpec(processor=EPYC_MILAN_7763, memory=MEM_MILAN)
            name = entry["name"]
            environs = [
                EnvironConfig(name=e.get("name", "default"),
                              compiler=e.get("compiler", "gcc"),
                              compiler_version=e.get("version"))
                for e in entry.get("environs", [{"name": "default"}])
            ]
            partitions = {
                "default": PartitionConfig(
                    name="default",
                    node=node,
                    scheduler=entry.get("scheduler", "local"),
                    launcher=entry.get("launcher", "local"),
                    num_nodes=int(entry.get("num_nodes", 1)),
                    environs=environs,
                )
            }
            self.add(
                SystemConfig(
                    name=name,
                    description=entry.get("description", name),
                    partitions=partitions,
                    hostname_patterns=tuple(entry.get("hostnames", ())),
                )
            )


def _environs_for(system: SystemDescription) -> List[EnvironConfig]:
    """Programming environments from the system's registered compilers."""
    env = system.env_factory() if system.env_factory else None
    out: List[EnvironConfig] = []
    seen = set()
    if env is None:
        return [EnvironConfig(name="default", compiler="gcc")]
    for comp in env.compilers:
        label = f"{comp.name}@{comp.version}"
        if label in seen:
            continue
        seen.add(label)
        out.append(
            EnvironConfig(
                name=label,
                compiler=comp.name,
                compiler_version=str(comp.version),
                modules=tuple(comp.modules),
            )
        )
    # first entry doubles as the 'default' environment
    default = EnvironConfig(
        name="default",
        compiler=out[0].compiler,
        compiler_version=out[0].compiler_version,
        modules=out[0].modules,
    )
    return [default] + out


def default_site_config() -> SiteConfig:
    """The shipped configuration: every system of the paper, ready to use."""
    site = SiteConfig()
    for name, system in SYSTEMS.items():
        partitions: Dict[str, PartitionConfig] = {}
        for pname, part in system.partitions.items():
            partitions[pname] = PartitionConfig(
                name=pname,
                node=part.node,
                scheduler=part.scheduler,
                launcher=part.launcher,
                num_nodes=part.num_nodes,
                environs=_environs_for(system),
                access=tuple(part.access_options),
            )
        site.add(
            SystemConfig(
                name=name,
                description=system.full_name,
                partitions=partitions,
                hostname_patterns=tuple(system.hostname_patterns),
                requires_account=system.requires_account,
                requires_qos=system.requires_qos,
                default_account=system.default_account,
                default_qos=system.default_qos,
            )
        )
    return site
