"""The execution policies: expand test cases, run them, report.

Mirrors ``reframe -r``: take the selected benchmark classes, fan out over
parameter variants and the target platform's environments, push each case
through the pipeline, write perflogs, and produce the run summary (the
``[ PASSED ]`` / ``[ FAILED ]`` lines and the ``--performance-report``
table).

Three execution policies are provided (DESIGN.md section 4):

* ``serial`` -- one case at a time, in topological dependency order;
* ``async`` -- dependency wavefronts on a worker pool
  (:mod:`repro.runner.parallel`), with results, reports, and perflogs in
  the exact serial order (deterministic, bit-identical output);
* ``procs`` -- the same wavefronts, but each case's pipeline simulation
  runs in a worker *process* (:mod:`repro.runner.procs`) while all
  campaign state and I/O stay in the parent, sidestepping the GIL for
  CPU-bound campaigns with the same bit-identical output.

Either way one :class:`~repro.pkgmgr.memo.ConcretizationCache` and one
:class:`~repro.pkgmgr.installer.Installer` are shared across the whole
campaign: identical abstract specs concretize once per (spec, system
config), dependency builds are reused, and roots are still rebuilt every
run (Principle 3).
"""

from __future__ import annotations

import fnmatch
import hashlib
import io
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Pattern,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.faults import FaultClock, FaultPlan
from repro.obs.live import LiveStatsSink, as_live_sink
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ReplayedSpans, Tracer, as_tracer
from repro.pkgmgr.installer import Installer
from repro.pkgmgr.memo import ConcretizationCache
from repro.runner.benchmark import RegressionTest
from repro.runner.config import SiteConfig, default_site_config
from repro.runner.fields import class_variables, parameter_space
from repro.runner.health import HealthTracker
from repro.runner.parallel import (
    SpeculationPolicy,
    order_by_dependencies,
    run_waves,
)
from repro.runner.perflog import PerflogHandler
from repro.runner.pipeline import CaseResult, TestCase, run_case
from repro.runner.procs import ProcsPool, procs_unsupported
from repro.runner.resilience import (
    COMPLETED_STATUSES,
    CampaignAborted,
    CampaignJournal,
    CircuitBreaker,
    DurabilityError,
    DurabilityPolicy,
    Quarantine,
    RetryPolicy,
    as_journal,
    case_fingerprint,
    make_case_record,
    result_from_record,
    run_config_fingerprint,
)
from repro.runner.results import (
    CaseResultStore,
    as_result_store,
    make_entry,
    replay_result,
)
from repro.runner.watchdog import Watchdog, WatchdogSpec, as_watchdog

__all__ = ["Executor", "RunReport", "POLICIES"]

#: the execution policies run_cases accepts
POLICIES = ("serial", "async", "procs")


@dataclass
class RunReport:
    results: List[CaseResult] = field(default_factory=list)
    #: circuit-breaker trip message when the campaign stopped early
    aborted: Optional[str] = None
    #: nodes the health tracker drained during the campaign
    drained_nodes: List[str] = field(default_factory=list)
    #: watchdog accounting (``Watchdog.as_dict()``) when one was armed
    watchdog: Optional[Dict[str, Any]] = None
    #: node-health ledger (``HealthTracker.as_dict()``) when one ran
    health: Optional[Dict[str, Any]] = None
    #: end-of-campaign metrics snapshot (``MetricsRegistry.snapshot()``)
    #: when tracing or metrics collection was enabled -- the same dict
    #: the trace file's final record and ``attach_metrics`` carry
    metrics: Optional[Dict[str, Any]] = None
    #: the JSONL trace file spans were streamed to (None: not traced)
    trace_path: Optional[str] = None
    #: the sealed live-status artifact the live plane streamed to
    #: (None: no live sink, in-memory sink, or the stream degraded)
    live_status_path: Optional[str] = None
    #: result-store accounting (``ResultStoreStats.as_dict()``) when a
    #: --result-store was armed -- the ``Replayed:`` summary line and
    #: ``--cache-stats`` reporting read this
    result_cache: Optional[Dict[str, Any]] = None
    #: artifact -> absorbed storage-failure count under ``--durability
    #: degrade`` (None when nothing degraded: quiet summaries unchanged)
    degraded: Optional[Dict[str, int]] = None

    @property
    def num_cases(self) -> int:
        return len(self.results)

    @property
    def passed(self) -> List[CaseResult]:
        return [r for r in self.results if r.passed]

    @property
    def failed(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed and not r.skipped]

    @property
    def skipped(self) -> List[CaseResult]:
        return [r for r in self.results if r.skipped]

    @property
    def retried(self) -> List[CaseResult]:
        return [r for r in self.results if r.attempts > 1]

    @property
    def resumed(self) -> List[CaseResult]:
        return [r for r in self.results if r.resumed]

    @property
    def quarantined(self) -> List[CaseResult]:
        return [r for r in self.results if r.quarantined]

    @property
    def replayed(self) -> List[CaseResult]:
        return [r for r in self.results if r.replayed]

    @property
    def faults_injected(self) -> int:
        return sum(len(r.fault_log) for r in self.results)

    @property
    def speculated(self) -> List[CaseResult]:
        return [r for r in self.results if r.speculated]

    @property
    def speculation_wins(self) -> List[CaseResult]:
        return [r for r in self.results if r.speculation_won]

    @property
    def hung_attempts(self) -> int:
        return sum(r.hung_attempts for r in self.results)

    @property
    def success(self) -> bool:
        return not self.failed and self.aborted is None

    def summary(self) -> str:
        out = io.StringIO()
        for r in self.results:
            if r.passed:
                out.write(f"[ PASSED ] {r.case.display_name}\n")
            elif r.skipped:
                out.write(f"[  SKIP  ] {r.case.display_name}\n")
            else:
                out.write(
                    f"[ FAILED ] {r.case.display_name} "
                    f"({r.failing_stage}: {r.failure_reason})\n"
                )
        out.write(
            f"Ran {self.num_cases} case(s): {len(self.passed)} passed, "
            f"{len(self.failed)} failed, {len(self.skipped)} skipped\n"
        )
        # resilience counters, shown only when the campaign exercised them
        # (a quiet run's summary is byte-identical to the historical one)
        if self.retried:
            extra = sum(r.attempts - 1 for r in self.retried)
            out.write(
                f"Retried {len(self.retried)} case(s) "
                f"({extra} extra attempt(s))\n"
            )
        if self.resumed:
            out.write(
                f"Resumed {len(self.resumed)} case(s) from the "
                f"campaign journal\n"
            )
        if self.replayed:
            rate = 100.0 * len(self.replayed) / max(self.num_cases, 1)
            out.write(
                f"Replayed: {len(self.replayed)} case(s) from the "
                f"result store (hit rate {rate:.1f}%)\n"
            )
        if self.quarantined:
            out.write(f"Quarantined {len(self.quarantined)} case(s)\n")
        if self.faults_injected:
            out.write(f"Absorbed {self.faults_injected} injected fault(s)\n")
        if self.hung_attempts:
            out.write(
                f"Hung: {self.hung_attempts} attempt(s) killed by the "
                f"watchdog\n"
            )
        if self.speculated:
            out.write(
                f"Speculated {len(self.speculated)} straggler case(s) "
                f"({len(self.speculation_wins)} duplicate(s) won)\n"
            )
        if self.drained_nodes:
            out.write(
                f"Drained {len(self.drained_nodes)} node(s): "
                f"{', '.join(self.drained_nodes)}\n"
            )
        if self.degraded:
            detail = ", ".join(
                f"{artifact}: {count}"
                for artifact, count in sorted(self.degraded.items())
            )
            out.write(
                f"Degraded: {sum(self.degraded.values())} storage "
                f"failure(s) absorbed ({detail})\n"
            )
        if self.aborted:
            out.write(f"ABORTED: {self.aborted}\n")
        return out.getvalue()

    def performance_report(self) -> str:
        """The --performance-report table."""
        out = io.StringIO()
        out.write("PERFORMANCE REPORT\n")
        out.write("-" * 78 + "\n")
        for r in self.passed:
            if not r.perfvars:
                continue
            out.write(f"{r.case.display_name}\n")
            for var, (value, unit) in sorted(r.perfvars.items()):
                out.write(f"   - {var}: {value:.4g} {unit}\n")
        return out.getvalue()


def _compile_patterns(
    patterns: Optional[List[str]],
) -> Optional[List[Tuple[Pattern[str], str]]]:
    """Pre-compile -n/-x filters once per expansion (not once per case).

    Each pattern matches as fnmatch *or* substring, exactly as before;
    compiling ``fnmatch.translate`` output hoists the regex build out of
    the (class x variant x environment) triple loop.
    """
    if not patterns:
        return None
    return [(re.compile(fnmatch.translate(p)), p) for p in patterns]


def _name_hits(name: str, compiled: List[Tuple[Pattern[str], str]]) -> bool:
    return any(regex.match(name) or raw in name for regex, raw in compiled)


class Executor:
    """Expands and runs benchmark cases on one target platform."""

    def __init__(
        self,
        site: Optional[SiteConfig] = None,
        perflog_prefix: Optional[str] = None,
        perflog_batch: int = 64,
        perflog_timestamp: Optional[Union[str, Callable[[], str]]] = None,
        concretizer_cache: Optional[ConcretizationCache] = None,
    ):
        self.site = site or default_site_config()
        self.perflog = (
            PerflogHandler(
                perflog_prefix,
                batch_size=perflog_batch,
                timestamp=perflog_timestamp,
            )
            if perflog_prefix
            else None
        )
        # one installer per executor: dependency builds are reused across
        # cases within a session, roots always rebuilt (Principle 3)
        self.installer = Installer()
        # one concretization memo per executor: identical (abstract spec,
        # system config) pairs solve once per campaign (Principle 4: every
        # concretization, cached or not, still lands in the lockfile)
        self.concretizer_cache = concretizer_cache or ConcretizationCache()

    def expand_cases(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        system: str,
        environs: Optional[List[str]] = None,
        setvars: Optional[Dict[str, Any]] = None,
        spec_override: Optional[str] = None,
        account: Optional[str] = None,
        qos: Optional[str] = None,
        name_patterns: Optional[List[str]] = None,
        exclude: Optional[List[str]] = None,
        tags: Optional[List[str]] = None,
    ) -> List[TestCase]:
        """All (variant, environment) cases for one 'system[:partition]'.

        ``name_patterns``/``exclude``/``tags`` filter at *variant* level:
        ``--tag omp`` selects just the OpenMP BabelStream variant, and the
        paper's ``-n HPCG_ -x HPCG_Intel`` selects by (variant) name.

        Filtering is decided once per variant -- names are computed from
        the parameter point without instantiating the test, and at most
        one probe instance is built for tag filtering -- so excluded
        variants cost no test construction at all, and included ones are
        constructed exactly once per environment.
        """
        sysconf, partconf = self.site.get(system)
        env_names = environs or ["default"]
        include_pats = _compile_patterns(name_patterns)
        exclude_pats = _compile_patterns(exclude)
        tagset = set(tags) if tags else None
        cases = []
        for cls in test_classes:
            for point in parameter_space(cls):
                # name filters need no instance at all
                name = cls.name_for_params(point)
                if include_pats is not None and not _name_hits(name, include_pats):
                    continue
                if exclude_pats is not None and _name_hits(name, exclude_pats):
                    continue
                # tags may be refined in __init__ (e.g. BabelStream adds
                # its model), so probe with one throwaway instance -- which
                # is then *reused* as the first environment's test
                probe: Optional[RegressionTest] = None
                if tagset is not None:
                    probe = cls(**point)
                    if not tagset <= set(probe.tags):
                        continue
                for env_name in env_names:
                    # a fresh instance per case: cases must not share state
                    if probe is not None:
                        test, probe = probe, None
                    else:
                        test = cls(**point)
                    self._apply_setvars(test, setvars or {})
                    if spec_override is not None and hasattr(test, "spack_spec"):
                        test.spack_spec = spec_override
                    cases.append(
                        TestCase(
                            test=test,
                            system=sysconf,
                            partition=partconf,
                            environ_name=env_name,
                            account=account,
                            qos=qos,
                        )
                    )
        return cases

    @staticmethod
    def _apply_setvars(test: RegressionTest, setvars: Dict[str, Any]) -> None:
        if not setvars:
            return  # skip the MRO walk on the expansion hot path
        declared = class_variables(type(test))
        for name, value in setvars.items():
            if name not in declared:
                raise KeyError(
                    f"--setvar {name}: {type(test).__name__} declares no "
                    f"such variable (has: {', '.join(sorted(declared))})"
                )
            if isinstance(value, str):
                value = declared[name].coerce(value)
            setattr(test, name, value)

    @staticmethod
    def _order_by_dependencies(cases: Sequence[TestCase]) -> List[TestCase]:
        """Topologically order cases so test dependencies run first.

        (Kept as a method for backwards compatibility; the implementation
        lives in :func:`repro.runner.parallel.order_by_dependencies`.)
        """
        return order_by_dependencies(cases)

    def run_cases(
        self,
        cases: Sequence[TestCase],
        policy: str = "serial",
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        max_failures: Optional[int] = None,
        journal: Optional[Union[str, CampaignJournal]] = None,
        resume: bool = False,
        quarantine_threshold: Optional[int] = 3,
        watchdog: Optional[Union[str, WatchdogSpec, Watchdog]] = None,
        speculation: Optional[Union[bool, SpeculationPolicy]] = None,
        straggler_factor: float = 2.0,
        drain_after: Optional[int] = None,
        health: Optional[HealthTracker] = None,
        trace: Optional[Union[str, Tracer]] = None,
        metrics: Optional[Union[bool, MetricsRegistry]] = None,
        journal_batch: int = 1,
        result_store: Optional[Union[str, CaseResultStore]] = None,
        durability: str = "strict",
        live: Optional[Union[str, LiveStatsSink]] = None,
    ) -> RunReport:
        """Run a campaign under the chosen execution policy.

        ``policy='serial'`` processes the topological order one case at a
        time; ``policy='async'`` runs dependency wavefronts on ``workers``
        threads; ``policy='procs'`` runs them on ``workers`` processes
        (non-Spack campaigns only -- see :mod:`repro.runner.procs`).
        All produce results (and perflogs) in the identical,
        deterministic serial order.

        ``journal_batch > 1`` group-commits journal appends: records for
        up to that many finished cases are formatted as results stream in
        and written in one durable append (perflog rows are still flushed
        first, so the crash-safety invariant -- journal entry implies
        on-disk perflog data -- holds at every batch boundary).  The
        on-disk byte sequence is identical to per-case appends; the trade
        is ~batch x fewer fsyncs against a bounded tail-loss window on a
        crash.

        Resilience (DESIGN.md section 6):

        * ``retry`` bounds per-case re-attempts of transient failures
          (default: :class:`RetryPolicy` -- three attempts, exponential
          backoff on the virtual clock);
        * ``faults`` injects the deterministic chaos plan at every
          pipeline fault site (``--inject-faults``);
        * ``max_failures`` arms the campaign circuit breaker -- failures
          are counted in deterministic result order, and once the budget
          is exhausted the remaining cases are not run
          (:class:`RunReport.aborted` carries the trip message);
        * ``journal`` appends every finished case to a crash-safe JSONL
          journal *after* its perflog rows are flushed; with
          ``resume=True`` completed cases found in the journal are
          replayed instead of re-run, and cases that failed in
          ``quarantine_threshold`` earlier cycles are quarantined.

        Slow faults (DESIGN.md section 6.4):

        * ``watchdog`` (a spec string, :class:`WatchdogSpec` or armed
          :class:`Watchdog`) enforces per-stage deadlines on the
          simulated clock -- a job still running past its ``run`` budget
          is cancelled as HUNG (transient, hence retried), a build over
          its ``build`` budget fails the build stage;
        * ``speculation`` (``True`` or a :class:`SpeculationPolicy`)
          launches one speculative duplicate for any case slower than
          ``straggler_factor x`` the running median of completed peers;
          the accepted attempt is the only one perflogged/journaled;
        * ``drain_after`` arms a campaign-wide
          :class:`~repro.runner.health.HealthTracker`: nodes blamed for
          ``drain_after`` fault events are (softly) drained from
          allocation; state is journaled and restored on ``resume``.
          Pass a ``health`` tracker explicitly to share or pre-seed one.

        Observability (DESIGN.md section 7):

        * ``trace`` (a path or :class:`~repro.obs.trace.Tracer`) streams
          structured spans -- pipeline stages, scheduler job lifecycle,
          retries, watchdog events -- to a crash-safe JSONL trace file,
          flushed per case in the deterministic result order.  All
          timestamps are simulated seconds, so the trace for a given
          seed is *byte-identical* across execution policies;
        * ``metrics`` (``True`` or a shared
          :class:`~repro.obs.metrics.MetricsRegistry`) collects the
          campaign's counters and duration histograms; the snapshot
          lands on :attr:`RunReport.metrics`, in the trace file's final
          record, and (via ``RunProvenance.attach_metrics``) in
          provenance.  Tracing implies metrics;
        * ``live`` (a path or :class:`~repro.obs.live.LiveStatsSink`)
          arms the live analytics plane (DESIGN.md section 10): the
          sink subscribes to the perflog/trace writer hooks, receives
          every completed case as it is consumed, and -- when given a
          path -- streams sealed ``live-status`` snapshots a second
          process can watch with ``repro-top``.  A pure observer: it
          cannot fail or slow the campaign beyond its own accounting,
          and everything it sees is on the simulated clock.

        Incremental campaigns (DESIGN.md "Incremental campaigns"):

        * ``result_store`` (a directory path or
          :class:`~repro.runner.results.CaseResultStore`) content-
          addresses every finished case by its composite fingerprint
          (case coordinates, concretization problem, system
          fingerprint, benchmark source, run config).  On the next run,
          cases whose address is unchanged are **replayed** from the
          store -- stored perflog rows, spans, energy and provenance
          re-emitted byte-identically, marked ``cached_from`` -- and
          only the invalidated delta executes.  Composes with
          ``--resume``: journal-resumed cases skip the store entirely,
          and store replays journal as ``kind='replay'`` meta records
          (no double-counting).

        Storage faults (DESIGN.md section 6.6):

        * ``durability`` selects what a durable artifact's write failure
          does.  ``'strict'`` (default) fail-stops the campaign with a
          :class:`DurabilityError` naming the artifact; ``'degrade'``
          demotes *optional* artifacts -- result store, ingest-cache
          mirror, trace -- to their uncached/untraced path and keeps
          running (counted in ``io.degraded.*`` and the ``Degraded:``
          summary line).  The journal fail-stops under either policy,
          and perflog flushes retry (harder under degrade) before
          giving up.  When the fault plan carries I/O kinds
          (``enospc``/``eio``/``torn``/``bitrot``/``fsync-lie``) a
          :class:`~repro.iofaults.FaultyIO` shim is armed across every
          artifact writer.

        None of these are armed by default, and the default path runs
        byte-identically to earlier releases.  On successful completion
        the journal (if any) is compacted in place.
        """
        if policy not in POLICIES:
            raise ValueError(
                f"unknown execution policy {policy!r}; known: "
                f"{', '.join(POLICIES)}"
            )
        if journal_batch < 1:
            raise ValueError(f"journal_batch must be >= 1, got {journal_batch}")
        ordered = self._order_by_dependencies(cases)
        effective_workers = workers if policy in ("async", "procs") else 1

        retry_policy = retry or RetryPolicy()
        clock = faults.clock if faults is not None else FaultClock()
        breaker = CircuitBreaker(max_failures)
        quarantine = Quarantine(quarantine_threshold)
        journal = as_journal(journal)
        watchdog = as_watchdog(watchdog)
        if health is None and drain_after is not None:
            health = HealthTracker(drain_after=drain_after)
        if isinstance(speculation, bool):
            speculation = (
                SpeculationPolicy(straggler_factor=straggler_factor)
                if speculation
                else None
            )
        store = as_result_store(result_store)
        store_keys: Dict[int, str] = {}
        run_id = ""
        if store is not None:
            config_key = run_config_fingerprint(
                retry=retry_policy,
                faults=faults,
                watchdog_spec=watchdog.spec if watchdog is not None else None,
                speculation=speculation,
                drain_after=drain_after,
            )
            # composite keys are computed up front (cheap: sha256 over
            # sorted-key JSON, source hashes memoized per class) so the
            # campaign's run id -- the ``cached_from`` provenance marker
            # -- is itself deterministic content: the hash of every
            # case's content address, independent of policy and order
            for case in ordered:
                store_keys[id(case)] = store.key_for(case, config_key)
            run_id = hashlib.sha256(
                "\x1f".join(sorted(store_keys.values())).encode("utf-8")
            ).hexdigest()[:12]
        tracer = as_tracer(trace)
        if isinstance(metrics, MetricsRegistry):
            registry: Optional[MetricsRegistry] = metrics
        elif metrics or tracer is not None:
            registry = MetricsRegistry()
        else:
            registry = None
        # the campaign track lays accepted cases end-to-end in the
        # deterministic consumption order; flushed once, at the end
        campaign_rec = (
            tracer.recorder("campaign") if tracer is not None else None
        )
        campaign_cursor = [0.0]
        live_sink = as_live_sink(live)
        if live_sink is not None:
            # the live plane listens on the writer hooks (add_sink is
            # idempotent: fleet slices reuse one executor + sink pair)
            if tracer is not None:
                tracer.add_sink(live_sink)
            if self.perflog is not None:
                self.perflog.add_sink(live_sink)
        completed: Dict[str, Dict[str, Any]] = {}
        if journal is not None and resume:
            completed = journal.load()
            quarantine.seed(journal.failure_counts())
            if health is not None:
                snapshot = journal.health_snapshot()
                if snapshot is not None:
                    health.restore(snapshot)
        if self.perflog is not None and faults is not None:
            self.perflog.faults = faults
        durpolicy = DurabilityPolicy(durability)
        iofault_shim = None
        if faults is not None and faults.has_io_faults:
            from repro.iofaults import FaultyIO

            iofault_shim = FaultyIO(faults)
            if journal is not None:
                journal.attach_io(iofault_shim, "journal")
            if self.perflog is not None:
                self.perflog.attach_io(iofault_shim)
            if tracer is not None:
                tracer.attach_io(iofault_shim, "trace")
            if store is not None:
                store.attach_io(iofault_shim)
        if self.perflog is not None:
            self.perflog.on_store_error = (
                lambda path, exc: durpolicy.absorb("ingest", path, exc)
            )
        #: perflog flush attempts before giving up: storage faults are
        #: drawn per operation, so degrade mode retries hard enough that
        #: a heavy storm still converges (0.34^16 ~ 3e-8), while strict
        #: keeps the historical 3 tries and then fail-stops
        flush_tries = 3 if durpolicy.strict else 16
        procs_pool: Optional[ProcsPool] = None
        if policy == "procs":
            reason = procs_unsupported(faults=faults, health=health,
                                       cases=ordered)
            if reason is not None:
                raise ValueError(f"--policy=procs: {reason}")
            # eager spawn: workers fork here, before any wavefront thread
            # exists, and live for the whole campaign
            procs_pool = ProcsPool(
                effective_workers,
                faults=faults,
                watchdog_spec=(
                    watchdog.spec if watchdog is not None else None
                ),
                retry=retry_policy,
                trace=tracer is not None,
                trace_wall=tracer.wall if tracer is not None else False,
            )

        def precheck(case: TestCase) -> Optional[CaseResult]:
            """Resume replay / quarantine short-circuit (parent-side)."""
            fingerprint = case_fingerprint(case)
            record = completed.get(fingerprint)
            if record is not None and record.get("status") in COMPLETED_STATUSES:
                # crash-safe resume: replay, don't re-run
                result = result_from_record(case, record)
                if tracer is not None:
                    recorder = tracer.recorder(case.display_name)
                    recorder.event("resumed", 0.0, "case")
                    result._trace = recorder
                return result
            if quarantine.is_quarantined(fingerprint):
                result = CaseResult(case=case)
                result.failing_stage = "setup"
                result.failure_reason = (
                    f"quarantined: {quarantine.failures(fingerprint)} "
                    f"recorded failure(s) >= threshold "
                    f"{quarantine.threshold}"
                )
                result.quarantined = True
                if tracer is not None:
                    recorder = tracer.recorder(case.display_name)
                    recorder.event("quarantined", 0.0, "case")
                    result._trace = recorder
                return result
            if store is not None:
                entry = store.lookup(
                    store_keys[id(case)],
                    fingerprint=fingerprint,
                    need_perflog=self.perflog is not None,
                    need_spans=tracer is not None,
                )
                if entry is not None:
                    result = replay_result(case, entry)
                    if tracer is not None:
                        # the stored encoded lines flush through the
                        # tracer like a fresh case's spans -- same
                        # bytes, same global-id sequence as the cold
                        # run -- blitted verbatim (or id-shifted by a
                        # constant after an upstream edit)
                        result._trace = ReplayedSpans(
                            case.display_name, entry.get("trace") or {}
                        )
                    return result
            return None

        def case_runner(case: TestCase) -> CaseResult:
            pre = precheck(case)
            if pre is not None:
                return pre
            # a fresh recorder per invocation: a speculative duplicate
            # gets its own, and only the accepted attempt's is flushed
            recorder = (
                tracer.recorder(case.display_name)
                if tracer is not None else None
            )
            return run_case(
                case,
                installer=self.installer,
                concretizer_cache=self.concretizer_cache,
                retry=retry_policy,
                faults=faults,
                clock=clock,
                watchdog=watchdog,
                health=health,
                trace=recorder,
            )

        def procs_runner(case: TestCase) -> CaseResult:
            pre = precheck(case)
            if pre is not None:
                return pre
            result = procs_pool.run(case)
            # fold the worker's per-case fault/watchdog state into the
            # campaign-wide objects *before* this result is consumed, so
            # a speculative duplicate (run in-process) and the final
            # report see exactly the state a serial campaign would
            if faults is not None:
                delta = getattr(result, "_fault_delta", None)
                if delta is not None:
                    faults.absorb(delta)
            if watchdog is not None:
                wdelta = getattr(result, "_watchdog_delta", None)
                if wdelta is not None:
                    watchdog.absorb(wdelta)
            return result

        collected: List[CaseResult] = []
        # journal group-commit buffer (journal_batch > 1): records are
        # formatted per case in consumption order, appended in batches
        jbuffer: List[Dict[str, Any]] = []

        def flush_perflog_retrying() -> None:
            """Flush buffered rows, retrying failed files.

            The batched writer keeps exactly the unwritten files
            buffered, so each retry re-attempts just the remainder
            (storage faults draw fresh per operation).  Exhaustion is a
            :class:`DurabilityError`: perflogs are the primary data --
            there is nothing to degrade *to* -- so both policies
            fail-stop, degrade just tries much harder first.
            """
            if self.perflog is None:
                return
            last: Optional[Exception] = None
            for _ in range(flush_tries):
                try:
                    self.perflog.flush()
                    return
                except CampaignAborted:
                    raise
                except Exception as exc:
                    last = exc
            raise DurabilityError("perflog", self.perflog.prefix, last)

        def journal_append(fn: Callable, *args: Any) -> Any:
            """A journal write; storage failure always fail-stops.

            A campaign whose journal cannot be written must not keep
            running: resume state would silently diverge from reality.
            """
            try:
                return fn(*args)
            except OSError as exc:
                raise DurabilityError("journal", journal.path, exc) from exc

        def flush_journal() -> None:
            if not jbuffer:
                return
            # same perflog-before-journal invariant as persist_now,
            # applied at the batch boundary: every record about to be
            # appended has its perflog rows durably flushed first
            flush_perflog_retrying()
            journal_append(journal.record_many, jbuffer)
            jbuffer.clear()

        def emit_rows(result: CaseResult) -> None:
            """Buffer one result's perflog rows (fresh or replayed)."""
            if self.perflog is None:
                return
            try:
                if result.replayed:
                    stored = (result._replay or {}).get("perflog")
                    if stored:
                        # the cold run's verbatim bytes, not a re-format
                        self.perflog.emit_replay(
                            stored["relpath"], stored["lines"]
                        )
                else:
                    self.perflog.emit(result)  # may auto-flush early: safe
            except Exception:
                pass  # rows stay buffered; the next flush retries

        def journal_record(result: CaseResult, fingerprint: str,
                           failures: Optional[int]) -> Dict[str, Any]:
            if result.replayed:
                # meta record: --resume must not double-count replays
                return journal.make_replay_record(
                    result,
                    (result._replay or {}).get("key", ""),
                    cached_from=result.cached_from,
                    fingerprint=fingerprint,
                )
            return journal.make_record(result, fingerprint=fingerprint,
                                       failures=failures)

        def persist_batched(result: CaseResult, fingerprint: str,
                            failures: Optional[int]) -> None:
            emit_rows(result)
            jbuffer.append(journal_record(result, fingerprint, failures))
            if len(jbuffer) >= journal_batch:
                flush_journal()
            if health is not None and health.dirty:
                # health snapshots must not outrun their case records
                flush_journal()
                journal_append(journal.record_health, health.snapshot())

        def persist_now(result: CaseResult, fingerprint: str,
                        failures: Optional[int]) -> None:
            """Emit one result's perflog rows, then journal it.

            Ordering is the crash-safety invariant: the journal line is
            appended only after the case's perflog rows are durably
            flushed, so a journal entry always implies on-disk perflog
            data and ``--resume`` never loses (or duplicates) rows.
            Perflog write errors are retried -- the batched writer
            keeps unwritten files buffered -- and only a persistently
            failing flush aborts; without a journal, a failed write
            simply stays buffered for the next (or final) flush.
            """
            emit_rows(result)
            if journal is None:
                return
            # durable perflog data is unattainable after the retry
            # budget: fail loudly rather than journal a lie
            flush_perflog_retrying()
            journal_append(
                journal.record_many,
                [journal_record(result, fingerprint, failures)],
            )
            if health is not None and health.dirty:
                # snapshot *after* the case record: a resumed campaign
                # restores at least the health state this case produced
                journal_append(journal.record_health, health.snapshot())

        def drop_store() -> None:
            # degrade-mode demotion: every later case simply misses the
            # cache (and skips the write-behind), which only costs time
            nonlocal store
            store = None

        def store_entry(result: CaseResult) -> None:
            """Persist one freshly executed result into the store.

            Called *after* the case's spans flush, so the tracer's
            ``last_flush_bundle`` holds this case's final encoded trace
            lines and first global id -- exactly what the warm-path
            blit replays.  Wall-clock tracing is the one exclusion:
            stored lines would resurrect stale wall times, so a wall
            campaign stores no trace (and re-executes on warm runs).
            """
            perflog_doc = None
            if self.perflog is not None and self.perflog.last_emit:
                path, lines = self.perflog.last_emit
                perflog_doc = {
                    "relpath": self.perflog.relpath_for(path),
                    "lines": lines,
                }
            trace_doc = None
            if tracer is not None and not tracer.wall:
                recorder = getattr(result, "_trace", None)
                bundle = tracer.last_flush_bundle
                if recorder is not None and bundle is not None:
                    trace_doc = dict(bundle)
                    trace_doc["end_time"] = recorder.end_time
            # keys were precomputed per case object, but a procs result
            # carries a pickle round-tripped *copy* of its case -- same
            # content, different identity -- so recompute on a miss (the
            # address is pure content, both spellings agree)
            key = store_keys.get(id(result.case))
            if key is None:
                key = store.key_for(result.case, config_key)
            try:
                store.put(
                    key,
                    make_entry(
                        result,
                        key,
                        run_id,
                        # the same shape a journal case record carries, so
                        # replay_result reuses result_from_record verbatim
                        make_case_record(
                            result, fingerprint=case_fingerprint(result.case)
                        ),
                        perflog=perflog_doc,
                        trace=trace_doc,
                    ),
                )
            except CampaignAborted:
                raise
            except Exception as exc:
                # the store is an accelerator, not the record of truth:
                # under --durability degrade the campaign drops to
                # uncached execution instead of dying (strict raises)
                durpolicy.absorb("store", str(store.root), exc)
                drop_store()

        def case_span_attrs(result: CaseResult) -> Dict[str, Any]:
            """Campaign-track span attrs for one finished case.

            Shared between the trace record and the live sink, so the
            live plane and a later ``--replay`` of the trace attribute
            cases identically.
            """
            attrs: Dict[str, Any] = dict(
                status=(
                    "passed" if result.passed else
                    ("skipped" if result.skipped else "failed")
                ),
                attempts=result.attempts,
                resumed=result.resumed,
                speculated=result.speculated,
            )
            if result.replayed:
                # cache annotation -- the ONLY campaign-track
                # difference between a warm and a cold trace
                # (strip_replay_attrs removes it for comparison)
                attrs["replayed"] = True
            return attrs

        def on_result(result: CaseResult) -> None:
            # fires per case, in deterministic serial order, as soon as
            # the result is available (run_waves streams it) -- so the
            # journal is crash-consistent at every case boundary and the
            # breaker trips at the same case under every policy
            collected.append(result)
            failed = not result.passed and not result.skipped
            fingerprint = case_fingerprint(result.case)
            failures: Optional[int] = None
            if failed and not result.resumed:
                failures = quarantine.record_failure(fingerprint)
            if not result.resumed:
                if journal is not None and journal_batch > 1:
                    persist_batched(result, fingerprint, failures)
                else:
                    persist_now(result, fingerprint, failures)
            if registry is not None and not result.skipped:
                self._observe_result(registry, result)
            if tracer is not None:
                # flush the case's spans (in this deterministic order --
                # which is what makes the file byte-identical across
                # policies) and extend the campaign track
                recorder = getattr(result, "_trace", None)
                extent = (
                    recorder.end_time if recorder is not None else 0.0
                )
                t0 = campaign_cursor[0]
                if campaign_rec is not None:
                    span_attrs = case_span_attrs(result)
                    campaign_rec.record(
                        result.case.display_name, t0, t0 + extent,
                        "case", **span_attrs,
                    )
                    if live_sink is not None:
                        # the exact campaign-track record: live state
                        # reconciles byte-for-byte with a later replay
                        # of the trace (sched spans arrive separately
                        # through the note_flush hook)
                        live_sink.observe_case(
                            result.case.display_name, t0, t0 + extent,
                            span_attrs,
                        )
                campaign_cursor[0] = t0 + extent
                if recorder is not None:
                    try:
                        tracer.flush(recorder)
                    except CampaignAborted:
                        raise
                    except Exception as exc:
                        # degrade: finish untraced rather than die -- the
                        # half-written trace file is left for repro-fsck
                        durpolicy.absorb("trace", tracer.path, exc)
                        tracer.disable_disk()
                if (campaign_rec is not None and self.perflog is not None
                        and not result.resumed):
                    campaign_rec.event(
                        "perflog-flush", campaign_cursor[0], "io",
                        case=result.case.display_name,
                    )
            elif live_sink is not None:
                # untraced campaigns still feed the live plane: the
                # case extent is rebuilt from the simulated durations
                # (what the campaign track would have recorded), and
                # queue/job seconds go straight to the histograms since
                # no sched spans will arrive through note_flush
                extent = 0.0 if result.skipped else (
                    result.build_seconds + result.queue_seconds
                    + result.job_seconds + sum(result.backoff_schedule)
                )
                t0 = campaign_cursor[0]
                campaign_cursor[0] = t0 + extent
                live_sink.observe_case(
                    result.case.display_name, t0, t0 + extent,
                    case_span_attrs(result),
                    durations=(
                        None if result.skipped else {
                            "queue": result.queue_seconds,
                            "job": result.job_seconds,
                        }
                    ),
                )
            if (store is not None and not result.resumed
                    and not result.replayed and not result.quarantined):
                # quarantine short-circuits are ledger state, not
                # executed outcomes -- never store them.  Runs after the
                # trace flush so store_entry can capture the encoded
                # span lines the tracer just wrote for this case.
                store_entry(result)
            if failed:
                breaker.record_failure()
                if breaker.tripped:
                    raise CampaignAborted(breaker.describe())

        def on_wave(index: int, size: int) -> None:
            if campaign_rec is not None:
                campaign_rec.event("wave", campaign_cursor[0], "wave",
                                   index=index, cases=size)

        aborted: Optional[str] = None
        try:
            results: Sequence[CaseResult] = run_waves(
                ordered,
                procs_runner if procs_pool is not None else case_runner,
                workers=effective_workers,
                on_result=on_result,
                speculation=speculation,
                on_wave=on_wave if tracer is not None else None,
                duplicate_runner=(
                    case_runner if procs_pool is not None else None
                ),
            )
        except CampaignAborted as exc:
            aborted = str(exc)
            results = collected  # everything finished before the trip
        finally:
            if procs_pool is not None:
                procs_pool.close()
            try:
                if journal is not None:
                    flush_journal()  # group-commit the batched tail first
                flush_perflog_retrying()
                # journal any health mutations the final cases produced
                if (journal is not None and health is not None
                        and health.dirty):
                    journal_append(journal.record_health, health.snapshot())
            except CampaignAborted as exc:
                # the epilogue still runs: report what DID finish, with
                # the durability failure as the abort diagnostic
                if aborted is None:
                    aborted = str(exc)
            if store is not None:
                try:
                    store.flush()  # persist the write-behind identity index
                except CampaignAborted:
                    raise
                except Exception as exc:
                    try:
                        durpolicy.absorb("store", str(store.root), exc)
                    except CampaignAborted as exc2:
                        if aborted is None:
                            aborted = str(exc2)
        report = RunReport(
            results=list(results),
            aborted=aborted,
            drained_nodes=health.drained if health is not None else [],
            watchdog=watchdog.as_dict() if watchdog is not None else None,
            health=health.as_dict() if health is not None else None,
            trace_path=tracer.path if tracer is not None else None,
        )
        if store is not None:
            report.result_cache = store.stats.as_dict()
        if durpolicy.total_degraded:
            report.degraded = durpolicy.snapshot()
        if registry is not None:
            # campaign counters are derived from the final report, so the
            # snapshot's totals equal the journal-derived counts by
            # construction (the trace smoke test locks this in)
            self._populate_metrics(registry, report, store=store)
            report.metrics = registry.snapshot()
        if tracer is not None:
            try:
                if campaign_rec is not None:
                    tracer.flush(campaign_rec)
                if report.metrics is not None:
                    tracer.write_metrics(report.metrics)
            except CampaignAborted:
                raise
            except Exception as exc:
                durpolicy.absorb("trace", tracer.path, exc)
                tracer.disable_disk()
                report.degraded = durpolicy.snapshot()
        if live_sink is not None:
            # fold the end-of-run counters (store hit rates, degraded
            # streams) and emit the final status record; per fleet
            # slice these fold additively, like merge_snapshot
            live_sink.finalize(report.metrics, now=campaign_cursor[0])
            report.live_status_path = live_sink.status_path
        if journal is not None and report.success:
            # a finished campaign's journal only needs its latest state
            journal.compact()
        return report

    @staticmethod
    def _observe_result(registry: MetricsRegistry, result: CaseResult) -> None:
        """Feed one finished case's durations into the histograms.

        Called per result in the deterministic consumption order, so the
        histogram contents -- and thus the snapshot -- are identical
        across execution policies.  Skipped cases are filtered by the
        caller (a skip has no meaningful duration).
        """
        registry.histogram("build.seconds").observe(result.build_seconds)
        registry.histogram("sched.queue_seconds").observe(
            result.queue_seconds
        )
        registry.histogram("sched.job_seconds").observe(result.job_seconds)
        case_seconds = (
            result.build_seconds
            + result.queue_seconds
            + result.job_seconds
            + sum(result.backoff_schedule)
        )
        registry.histogram("case.seconds").observe(case_seconds)

    def _populate_metrics(
        self,
        registry: MetricsRegistry,
        report: RunReport,
        store: Optional[CaseResultStore] = None,
    ) -> None:
        """Fold the campaign's outcome counters into *registry*.

        The counter values mirror :meth:`RunReport.summary` exactly --
        every number a human reads in the ``[ PASSED ]`` epilogue has a
        machine-readable ``cases.*`` / ``retry.*`` twin in the snapshot.
        """
        registry.counter("cases.total").add(report.num_cases)
        registry.counter("cases.passed").add(len(report.passed))
        registry.counter("cases.failed").add(len(report.failed))
        registry.counter("cases.skipped").add(len(report.skipped))
        registry.counter("cases.resumed").add(len(report.resumed))
        registry.counter("cases.retried").add(len(report.retried))
        registry.counter("cases.quarantined").add(len(report.quarantined))
        registry.counter("retry.attempts_extra").add(
            sum(r.attempts - 1 for r in report.retried)
        )
        registry.counter("faults.injected").add(report.faults_injected)
        registry.counter("watchdog.hung_attempts").add(report.hung_attempts)
        if report.watchdog is not None:
            registry.counter("watchdog.heartbeats").add(
                int(report.watchdog.get("heartbeats_observed", 0))
            )
        registry.counter("spec.speculated").add(len(report.speculated))
        registry.counter("spec.wins").add(len(report.speculation_wins))
        registry.counter("health.drained_nodes").add(
            len(report.drained_nodes)
        )
        registry.gauge("campaign.aborted").set(
            1.0 if report.aborted else 0.0
        )
        # subsystem caches publish their own namespaces
        self.concretizer_cache.stats.publish(registry, "concretize")
        if (self.perflog is not None and self.perflog.store is not None
                and hasattr(self.perflog.store, "stats")):
            # the ingest-cache mirror's counters used to land only in
            # provenance; metrics snapshots under-reported cache work.
            # Gated on an attached store so quiet campaigns keep their
            # exact historical namespace (and trace trailer bytes).
            self.perflog.store.stats.publish(registry, "ingest")
        if store is not None:
            # only when a result store is armed: cold campaigns keep the
            # exact metrics namespace (and trace trailer bytes) they had
            # before incremental mode existed
            registry.counter("cases.replayed").add(len(report.replayed))
            store.stats.publish(registry, "resultstore")
        if report.degraded:
            # only when a storage failure was actually absorbed: quiet
            # campaigns keep a byte-identical metrics namespace
            for artifact, count in sorted(report.degraded.items()):
                registry.counter(f"io.degraded.{artifact}").add(count)

    def run(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        system: str,
        policy: str = "serial",
        workers: int = 1,
        **kwargs: Any,
    ) -> RunReport:
        return self.run_cases(
            self.expand_cases(test_classes, system, **kwargs),
            policy=policy,
            workers=workers,
        )
