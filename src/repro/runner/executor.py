"""The execution policy: expand test cases, run them, report.

Mirrors ``reframe -r``: take the selected benchmark classes, fan out over
parameter variants and the target platform's environments, push each case
through the pipeline, write perflogs, and produce the run summary (the
``[ PASSED ]`` / ``[ FAILED ]`` lines and the ``--performance-report``
table).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.pkgmgr.installer import Installer
from repro.runner.benchmark import RegressionTest
from repro.runner.config import SiteConfig, default_site_config
from repro.runner.fields import class_variables
from repro.runner.perflog import PerflogHandler
from repro.runner.pipeline import CaseResult, TestCase, run_case

__all__ = ["Executor", "RunReport"]


@dataclass
class RunReport:
    results: List[CaseResult] = field(default_factory=list)

    @property
    def num_cases(self) -> int:
        return len(self.results)

    @property
    def passed(self) -> List[CaseResult]:
        return [r for r in self.results if r.passed]

    @property
    def failed(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed and not r.skipped]

    @property
    def skipped(self) -> List[CaseResult]:
        return [r for r in self.results if r.skipped]

    @property
    def success(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        out = io.StringIO()
        for r in self.results:
            if r.passed:
                out.write(f"[ PASSED ] {r.case.display_name}\n")
            elif r.skipped:
                out.write(f"[  SKIP  ] {r.case.display_name}\n")
            else:
                out.write(
                    f"[ FAILED ] {r.case.display_name} "
                    f"({r.failing_stage}: {r.failure_reason})\n"
                )
        out.write(
            f"Ran {self.num_cases} case(s): {len(self.passed)} passed, "
            f"{len(self.failed)} failed, {len(self.skipped)} skipped\n"
        )
        return out.getvalue()

    def performance_report(self) -> str:
        """The --performance-report table."""
        out = io.StringIO()
        out.write("PERFORMANCE REPORT\n")
        out.write("-" * 78 + "\n")
        for r in self.passed:
            if not r.perfvars:
                continue
            out.write(f"{r.case.display_name}\n")
            for var, (value, unit) in sorted(r.perfvars.items()):
                out.write(f"   - {var}: {value:.4g} {unit}\n")
        return out.getvalue()


class Executor:
    """Expands and runs benchmark cases on one target platform."""

    def __init__(
        self,
        site: Optional[SiteConfig] = None,
        perflog_prefix: Optional[str] = None,
    ):
        self.site = site or default_site_config()
        self.perflog = (
            PerflogHandler(perflog_prefix) if perflog_prefix else None
        )
        # one installer per executor: dependency builds are reused across
        # cases within a session, roots always rebuilt (Principle 3)
        self.installer = Installer()

    def expand_cases(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        system: str,
        environs: Optional[List[str]] = None,
        setvars: Optional[Dict[str, Any]] = None,
        spec_override: Optional[str] = None,
        account: Optional[str] = None,
        qos: Optional[str] = None,
        name_patterns: Optional[List[str]] = None,
        exclude: Optional[List[str]] = None,
        tags: Optional[List[str]] = None,
    ) -> List[TestCase]:
        """All (variant, environment) cases for one 'system[:partition]'.

        ``name_patterns``/``exclude``/``tags`` filter at *variant* level:
        ``--tag omp`` selects just the OpenMP BabelStream variant, and the
        paper's ``-n HPCG_ -x HPCG_Intel`` selects by (variant) name.
        """
        import fnmatch

        def name_hits(name: str, patterns: List[str]) -> bool:
            return any(fnmatch.fnmatch(name, p) or p in name for p in patterns)

        sysconf, partconf = self.site.get(system)
        env_names = environs or ["default"]
        cases = []
        for cls in test_classes:
            param_points = [t._param_values for t in cls.variants()]
            for point in param_points:
                for env_name in env_names:
                    # a fresh instance per case: cases must not share state
                    test = cls(**point)
                    if name_patterns and not name_hits(test.name, name_patterns):
                        continue
                    if exclude and name_hits(test.name, exclude):
                        continue
                    if tags and not set(tags) <= set(test.tags):
                        continue
                    self._apply_setvars(test, setvars or {})
                    if spec_override is not None and hasattr(test, "spack_spec"):
                        test.spack_spec = spec_override
                    cases.append(
                        TestCase(
                            test=test,
                            system=sysconf,
                            partition=partconf,
                            environ_name=env_name,
                            account=account,
                            qos=qos,
                        )
                    )
        return cases

    @staticmethod
    def _apply_setvars(test: RegressionTest, setvars: Dict[str, Any]) -> None:
        declared = class_variables(type(test))
        for name, value in setvars.items():
            if name not in declared:
                raise KeyError(
                    f"--setvar {name}: {type(test).__name__} declares no "
                    f"such variable (has: {', '.join(sorted(declared))})"
                )
            if isinstance(value, str):
                value = declared[name].coerce(value)
            setattr(test, name, value)

    @staticmethod
    def _order_by_dependencies(cases: Sequence[TestCase]) -> List[TestCase]:
        """Topologically order cases so test dependencies run first.

        Dependencies are matched by *base class name* within the same
        platform (ReFrame semantics).  A cycle is a configuration error.
        """
        import networkx as nx

        graph = nx.DiGraph()
        by_key = {}
        for i, case in enumerate(cases):
            graph.add_node(i)
            key = (case.platform, type(case.test).base_name())
            by_key.setdefault(key, []).append(i)
        for i, case in enumerate(cases):
            for dep_name in getattr(case.test, "depends_on_tests", ()):
                for j in by_key.get((case.platform, dep_name), []):
                    graph.add_edge(j, i)
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(graph)
            raise ValueError(f"test dependency cycle: {cycle}") from None
        return [cases[i] for i in order]

    def run_cases(self, cases: Sequence[TestCase]) -> RunReport:
        report = RunReport()
        finished: Dict[tuple, CaseResult] = {}
        for case in self._order_by_dependencies(cases):
            deps = getattr(case.test, "depends_on_tests", ())
            if deps:
                resolved = {}
                missing = []
                for dep_name in deps:
                    dep_result = finished.get((case.platform, dep_name))
                    if dep_result is None or not dep_result.passed:
                        missing.append(dep_name)
                    else:
                        resolved[dep_name] = dep_result
                if missing:
                    result = CaseResult(case=case)
                    result.failing_stage = "setup"
                    result.failure_reason = (
                        f"dependencies not satisfied on {case.platform}: "
                        f"{', '.join(missing)}"
                    )
                    report.results.append(result)
                    if self.perflog is not None:
                        self.perflog.emit(result)
                    continue
                case.test.dependency_results = resolved
            result = run_case(case, installer=self.installer)
            finished[(case.platform, type(case.test).base_name())] = result
            report.results.append(result)
            if self.perflog is not None:
                self.perflog.emit(result)
        return report

    def run(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        system: str,
        **kwargs: Any,
    ) -> RunReport:
        return self.run_cases(self.expand_cases(test_classes, system, **kwargs))
