"""The execution policies: expand test cases, run them, report.

Mirrors ``reframe -r``: take the selected benchmark classes, fan out over
parameter variants and the target platform's environments, push each case
through the pipeline, write perflogs, and produce the run summary (the
``[ PASSED ]`` / ``[ FAILED ]`` lines and the ``--performance-report``
table).

Two execution policies are provided (DESIGN.md section 4):

* ``serial`` -- one case at a time, in topological dependency order;
* ``async`` -- dependency wavefronts on a worker pool
  (:mod:`repro.runner.parallel`), with results, reports, and perflogs in
  the exact serial order (deterministic, bit-identical output).

Either way one :class:`~repro.pkgmgr.memo.ConcretizationCache` and one
:class:`~repro.pkgmgr.installer.Installer` are shared across the whole
campaign: identical abstract specs concretize once per (spec, system
config), dependency builds are reused, and roots are still rebuilt every
run (Principle 3).
"""

from __future__ import annotations

import fnmatch
import io
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Pattern, Sequence, Tuple, Type

from repro.pkgmgr.installer import Installer
from repro.pkgmgr.memo import ConcretizationCache
from repro.runner.benchmark import RegressionTest
from repro.runner.config import SiteConfig, default_site_config
from repro.runner.fields import class_variables, parameter_space
from repro.runner.parallel import order_by_dependencies, run_waves
from repro.runner.perflog import PerflogHandler
from repro.runner.pipeline import CaseResult, TestCase, run_case

__all__ = ["Executor", "RunReport", "POLICIES"]

#: the execution policies run_cases accepts
POLICIES = ("serial", "async")


@dataclass
class RunReport:
    results: List[CaseResult] = field(default_factory=list)

    @property
    def num_cases(self) -> int:
        return len(self.results)

    @property
    def passed(self) -> List[CaseResult]:
        return [r for r in self.results if r.passed]

    @property
    def failed(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed and not r.skipped]

    @property
    def skipped(self) -> List[CaseResult]:
        return [r for r in self.results if r.skipped]

    @property
    def success(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        out = io.StringIO()
        for r in self.results:
            if r.passed:
                out.write(f"[ PASSED ] {r.case.display_name}\n")
            elif r.skipped:
                out.write(f"[  SKIP  ] {r.case.display_name}\n")
            else:
                out.write(
                    f"[ FAILED ] {r.case.display_name} "
                    f"({r.failing_stage}: {r.failure_reason})\n"
                )
        out.write(
            f"Ran {self.num_cases} case(s): {len(self.passed)} passed, "
            f"{len(self.failed)} failed, {len(self.skipped)} skipped\n"
        )
        return out.getvalue()

    def performance_report(self) -> str:
        """The --performance-report table."""
        out = io.StringIO()
        out.write("PERFORMANCE REPORT\n")
        out.write("-" * 78 + "\n")
        for r in self.passed:
            if not r.perfvars:
                continue
            out.write(f"{r.case.display_name}\n")
            for var, (value, unit) in sorted(r.perfvars.items()):
                out.write(f"   - {var}: {value:.4g} {unit}\n")
        return out.getvalue()


def _compile_patterns(
    patterns: Optional[List[str]],
) -> Optional[List[Tuple[Pattern[str], str]]]:
    """Pre-compile -n/-x filters once per expansion (not once per case).

    Each pattern matches as fnmatch *or* substring, exactly as before;
    compiling ``fnmatch.translate`` output hoists the regex build out of
    the (class x variant x environment) triple loop.
    """
    if not patterns:
        return None
    return [(re.compile(fnmatch.translate(p)), p) for p in patterns]


def _name_hits(name: str, compiled: List[Tuple[Pattern[str], str]]) -> bool:
    return any(regex.match(name) or raw in name for regex, raw in compiled)


class Executor:
    """Expands and runs benchmark cases on one target platform."""

    def __init__(
        self,
        site: Optional[SiteConfig] = None,
        perflog_prefix: Optional[str] = None,
        perflog_batch: int = 64,
        concretizer_cache: Optional[ConcretizationCache] = None,
    ):
        self.site = site or default_site_config()
        self.perflog = (
            PerflogHandler(perflog_prefix, batch_size=perflog_batch)
            if perflog_prefix
            else None
        )
        # one installer per executor: dependency builds are reused across
        # cases within a session, roots always rebuilt (Principle 3)
        self.installer = Installer()
        # one concretization memo per executor: identical (abstract spec,
        # system config) pairs solve once per campaign (Principle 4: every
        # concretization, cached or not, still lands in the lockfile)
        self.concretizer_cache = concretizer_cache or ConcretizationCache()

    def expand_cases(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        system: str,
        environs: Optional[List[str]] = None,
        setvars: Optional[Dict[str, Any]] = None,
        spec_override: Optional[str] = None,
        account: Optional[str] = None,
        qos: Optional[str] = None,
        name_patterns: Optional[List[str]] = None,
        exclude: Optional[List[str]] = None,
        tags: Optional[List[str]] = None,
    ) -> List[TestCase]:
        """All (variant, environment) cases for one 'system[:partition]'.

        ``name_patterns``/``exclude``/``tags`` filter at *variant* level:
        ``--tag omp`` selects just the OpenMP BabelStream variant, and the
        paper's ``-n HPCG_ -x HPCG_Intel`` selects by (variant) name.

        Filtering is decided once per variant -- names are computed from
        the parameter point without instantiating the test, and at most
        one probe instance is built for tag filtering -- so excluded
        variants cost no test construction at all, and included ones are
        constructed exactly once per environment.
        """
        sysconf, partconf = self.site.get(system)
        env_names = environs or ["default"]
        include_pats = _compile_patterns(name_patterns)
        exclude_pats = _compile_patterns(exclude)
        tagset = set(tags) if tags else None
        cases = []
        for cls in test_classes:
            for point in parameter_space(cls):
                # name filters need no instance at all
                name = cls.name_for_params(point)
                if include_pats is not None and not _name_hits(name, include_pats):
                    continue
                if exclude_pats is not None and _name_hits(name, exclude_pats):
                    continue
                # tags may be refined in __init__ (e.g. BabelStream adds
                # its model), so probe with one throwaway instance -- which
                # is then *reused* as the first environment's test
                probe: Optional[RegressionTest] = None
                if tagset is not None:
                    probe = cls(**point)
                    if not tagset <= set(probe.tags):
                        continue
                for env_name in env_names:
                    # a fresh instance per case: cases must not share state
                    if probe is not None:
                        test, probe = probe, None
                    else:
                        test = cls(**point)
                    self._apply_setvars(test, setvars or {})
                    if spec_override is not None and hasattr(test, "spack_spec"):
                        test.spack_spec = spec_override
                    cases.append(
                        TestCase(
                            test=test,
                            system=sysconf,
                            partition=partconf,
                            environ_name=env_name,
                            account=account,
                            qos=qos,
                        )
                    )
        return cases

    @staticmethod
    def _apply_setvars(test: RegressionTest, setvars: Dict[str, Any]) -> None:
        declared = class_variables(type(test))
        for name, value in setvars.items():
            if name not in declared:
                raise KeyError(
                    f"--setvar {name}: {type(test).__name__} declares no "
                    f"such variable (has: {', '.join(sorted(declared))})"
                )
            if isinstance(value, str):
                value = declared[name].coerce(value)
            setattr(test, name, value)

    @staticmethod
    def _order_by_dependencies(cases: Sequence[TestCase]) -> List[TestCase]:
        """Topologically order cases so test dependencies run first.

        (Kept as a method for backwards compatibility; the implementation
        lives in :func:`repro.runner.parallel.order_by_dependencies`.)
        """
        return order_by_dependencies(cases)

    def run_cases(
        self,
        cases: Sequence[TestCase],
        policy: str = "serial",
        workers: int = 1,
    ) -> RunReport:
        """Run a campaign under the chosen execution policy.

        ``policy='serial'`` processes the topological order one case at a
        time; ``policy='async'`` runs dependency wavefronts on ``workers``
        threads.  Both produce results (and perflogs) in the identical,
        deterministic serial order.
        """
        if policy not in POLICIES:
            raise ValueError(
                f"unknown execution policy {policy!r}; known: "
                f"{', '.join(POLICIES)}"
            )
        ordered = self._order_by_dependencies(cases)
        effective_workers = workers if policy == "async" else 1

        def case_runner(case: TestCase) -> CaseResult:
            return run_case(
                case,
                installer=self.installer,
                concretizer_cache=self.concretizer_cache,
            )

        on_result = self.perflog.emit if self.perflog is not None else None
        try:
            results = run_waves(
                ordered,
                case_runner,
                workers=effective_workers,
                on_result=on_result,
            )
        finally:
            if self.perflog is not None:
                self.perflog.flush()
        return RunReport(results=list(results))

    def run(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        system: str,
        policy: str = "serial",
        workers: int = 1,
        **kwargs: Any,
    ) -> RunReport:
        return self.run_cases(
            self.expand_cases(test_classes, system, **kwargs),
            policy=policy,
            workers=workers,
        )
