"""``repro.fleet``: a supervised multi-campaign benchmarking service.

The single-campaign engine (``repro-bench``) is crash-safe, incremental
and chaos-hardened; this package is the next tier the ROADMAP asks for
-- a *fleet* of campaigns run continuously with robustness as the
contract:

* :mod:`repro.fleet.queue` -- a durable campaign queue on the sealed
  JSONL layer: submit/claim/complete records with CRC seals, torn-tail
  healing and compaction;
* :mod:`repro.fleet.service` -- the embeddable :class:`CampaignService`
  API extracted from ``repro-bench`` (the CLI is now one client of it,
  the fleet supervisor another);
* :mod:`repro.fleet.supervisor` -- lease-based ownership on the
  simulated clock, bulkhead isolation between campaigns, per-tenant
  quotas and graceful drain;
* :mod:`repro.fleet.timeline` -- the longitudinal results store feeding
  cross-run regression detection (``repro.core.regression``);
* :mod:`repro.fleet.cli` -- the ``repro-fleet`` console script
  (``submit`` / ``run`` / ``status`` / ``drain`` / ``regressions``).
"""

from repro.fleet.queue import CampaignQueue, CampaignState
from repro.fleet.service import (
    CampaignConfigError,
    CampaignService,
    CampaignSpec,
    PreparedCampaign,
)
from repro.fleet.supervisor import FleetReport, FleetSupervisor, SupervisorCrash
from repro.fleet.timeline import ResultsTimeline

__all__ = [
    "CampaignConfigError",
    "CampaignQueue",
    "CampaignService",
    "CampaignSpec",
    "CampaignState",
    "FleetReport",
    "FleetSupervisor",
    "PreparedCampaign",
    "ResultsTimeline",
    "SupervisorCrash",
]
