"""``repro-fleet``: operate a campaign fleet from the command line.

Subcommands::

    repro-fleet submit --queue fleet.q -c babelstream --system sim:cpu ...
    repro-fleet run    --queue fleet.q [--worker w0] [--max-concurrent 4]
    repro-fleet status --queue fleet.q
    repro-fleet drain  --queue fleet.q
    repro-fleet regressions --timeline fleet.timeline

``submit`` enqueues a campaign spec (the ``repro-bench`` flag surface,
made durable); ``run`` starts a supervisor that claims, slices and
completes queued campaigns until the queue is terminal -- SIGTERM makes
it drain gracefully at the next slice boundary; ``drain`` asks a
*remote* supervisor (another process, another host sharing the queue
file) to do the same via a durable drain-request record; ``status``
prints the folded per-campaign queue state; ``regressions`` scans the
longitudinal timeline for sustained cross-run FOM shifts.

Exit codes follow the ``repro-bench`` contract: 0 when everything the
command touched is healthy, 1 when campaigns completed with failed
cases (or regressions were found), 2 when a campaign aborted.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.fleet.queue import CampaignQueue
from repro.fleet.service import CampaignSpec
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.timeline import ResultsTimeline

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Supervised multi-campaign benchmarking fleet",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="enqueue one campaign")
    submit.add_argument("--queue", required=True, metavar="PATH",
                        help="durable campaign queue file")
    submit.add_argument("--tenant", default="default",
                        help="tenant the campaign's node usage is "
                             "accounted to (default: default)")
    submit.add_argument("--priority", type=int, default=0,
                        help="claim priority; higher runs first "
                             "(default: 0)")
    submit.add_argument("--nodes", type=int, default=1,
                        help="node budget the campaign occupies while "
                             "leased (default: 1)")
    # the repro-bench surface a queued spec can carry
    submit.add_argument("-c", "--checkpath", action="append", default=[],
                        required=True, help="benchmark suite to load")
    submit.add_argument("--system", default=None)
    submit.add_argument("--site", action="append", default=[],
                        metavar="YAML")
    submit.add_argument("-S", "--spack-var", action="append", default=[],
                        metavar="VAR=VAL")
    submit.add_argument("--setvar", action="append", default=[],
                        metavar="VAR=VAL")
    submit.add_argument("-n", "--name", action="append", default=[])
    submit.add_argument("-x", "--exclude", action="append", default=[])
    submit.add_argument("--tag", action="append", default=[])
    submit.add_argument("-J", "--job-option", action="append", default=[])
    submit.add_argument("--environ", action="append", default=[])
    submit.add_argument("--perflog-dir", default="perflogs")
    submit.add_argument("--policy",
                        choices=["serial", "async", "procs"],
                        default="serial")
    submit.add_argument("-j", "--max-workers", type=int, default=4)
    submit.add_argument("--max-retries", type=int, default=2)
    submit.add_argument("--max-failures", type=int, default=None)
    submit.add_argument("--journal", default=None, metavar="PATH",
                        help="campaign journal path (default: derived "
                             "per-campaign beside the queue)")
    submit.add_argument("--journal-batch", type=int, default=1)
    submit.add_argument("--result-store", default=None, metavar="DIR")
    submit.add_argument("--inject-faults", default=None, metavar="SPEC")
    submit.add_argument("--fault-seed", type=int, default=0)
    submit.add_argument("--durability", choices=["strict", "degrade"],
                        default="strict")
    submit.add_argument("--watchdog", default=None, metavar="SPEC")

    run = sub.add_parser("run", help="supervise the queue until done")
    run.add_argument("--queue", required=True, metavar="PATH")
    run.add_argument("--worker", default="fleet-0",
                     help="supervisor identity in queue records; reuse "
                          "it to reclaim your own leases after a "
                          "restart (default: fleet-0)")
    run.add_argument("--slice-cases", type=int, default=4,
                     help="cases per campaign per scheduling round "
                          "(default: 4)")
    run.add_argument("--lease-seconds", type=float, default=10.0,
                     help="heartbeat lease TTL on the simulated clock "
                          "(default: 10)")
    run.add_argument("--max-concurrent", type=int, default=4,
                     help="campaigns held concurrently (default: 4)")
    run.add_argument("--cluster-nodes", type=int, default=None,
                     help="total node budget across held campaigns "
                          "(default: unlimited)")
    run.add_argument("--tenant-quota", action="append", default=[],
                     metavar="TENANT=NODES",
                     help="per-tenant concurrent node cap (repeatable)")
    run.add_argument("--inject-faults", default=None, metavar="SPEC",
                     help="fleet-level chaos: supervisor-crash / "
                          "lease-expire clauses keyed by campaign id")
    run.add_argument("--fault-seed", type=int, default=0)
    run.add_argument("--timeline", default=None, metavar="PATH",
                     help="append completed campaigns' FOMs to this "
                          "longitudinal results timeline")
    run.add_argument("--metrics", action="store_true",
                     help="print fleet.* counters after the summary")
    run.add_argument("--live-status", nargs="?", const="", default=None,
                     metavar="PATH",
                     help="stream live fleet aggregates to a sealed "
                          "JSONL artifact (default: <queue>.live.jsonl); "
                          "watch with repro-top or repro-fleet status")

    status = sub.add_parser("status", help="show per-campaign state")
    status.add_argument("--queue", required=True, metavar="PATH")
    status.add_argument("--live-status", default=None, metavar="PATH",
                        help="live-status artifact to read per-campaign "
                             "progress from (default: <queue>.live.jsonl "
                             "when present)")

    drain = sub.add_parser(
        "drain", help="ask the running supervisor to drain gracefully"
    )
    drain.add_argument("--queue", required=True, metavar="PATH")

    regressions = sub.add_parser(
        "regressions", help="scan the timeline for cross-run FOM shifts"
    )
    regressions.add_argument("--timeline", required=True, metavar="PATH")
    regressions.add_argument("--min-runs", type=int, default=5,
                             help="runs a cell needs before change-point "
                                  "detection applies (default: 5)")
    regressions.add_argument("--threshold", type=float, default=0.05,
                             help="relative shift treated as meaningful "
                                  "(default: 0.05)")
    return parser


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = CampaignSpec(
        suites=args.checkpath,
        system=args.system,
        site_yaml=args.site,
        setvar=args.setvar,
        spack_var=args.spack_var,
        name=args.name,
        exclude=args.exclude,
        tags=args.tag,
        job_options=args.job_option,
        environs=args.environ,
        perflog_dir=args.perflog_dir,
        policy=args.policy,
        max_workers=args.max_workers,
        max_retries=args.max_retries,
        max_failures=args.max_failures,
        journal=args.journal,
        journal_batch=args.journal_batch,
        result_store=args.result_store,
        inject_faults=args.inject_faults,
        fault_seed=args.fault_seed,
        durability=args.durability,
        watchdog=args.watchdog,
    )
    queue = CampaignQueue(args.queue)
    campaign_id = queue.submit(
        spec.to_doc(),
        tenant=args.tenant,
        priority=args.priority,
        nodes=args.nodes,
        now=queue.max_time(),
    )
    print(f"submitted: {campaign_id}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    quotas = {}
    for pair in args.tenant_quota:
        if "=" not in pair:
            print(f"error: expected TENANT=NODES, got {pair!r}",
                  file=sys.stderr)
            return 1
        tenant, _, nodes = pair.partition("=")
        try:
            quotas[tenant.strip()] = int(nodes)
        except ValueError:
            print(f"error: expected TENANT=NODES, got {pair!r}",
                  file=sys.stderr)
            return 1
    faults = None
    if args.inject_faults:
        from repro.faults import FaultPlan, FaultSpecError

        try:
            faults = FaultPlan.parse(args.inject_faults,
                                     seed=args.fault_seed)
        except FaultSpecError as exc:
            print(f"error: --inject-faults: {exc}", file=sys.stderr)
            return 1
    queue = CampaignQueue(args.queue)
    timeline = (
        ResultsTimeline(args.timeline) if args.timeline else None
    )
    live = args.live_status
    if live == "":
        live = f"{args.queue}.live.jsonl"
    supervisor = FleetSupervisor(
        queue,
        worker=args.worker,
        slice_cases=args.slice_cases,
        lease_seconds=args.lease_seconds,
        max_concurrent=args.max_concurrent,
        cluster_nodes=args.cluster_nodes,
        tenant_quotas=quotas,
        faults=faults,
        timeline=timeline,
        live=live,
    )

    # SIGTERM = graceful drain at the next slice boundary: running
    # campaigns checkpoint through their journals, leases are released,
    # the queue records the drain, a restarted supervisor resumes
    previous = signal.signal(
        signal.SIGTERM, lambda signum, frame: supervisor.request_drain()
    )
    try:
        report = supervisor.run()
    finally:
        signal.signal(signal.SIGTERM, previous)
    print(report.summary())
    if args.metrics and report.metrics:
        from repro.obs.cli import render_metrics

        print(render_metrics(report.metrics))
    if any(o.status == "aborted" for o in report.outcomes.values()):
        return 2
    if any(o.status == "failed" for o in report.outcomes.values()):
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    queue = CampaignQueue(args.queue)
    states = queue.load()
    for cid in sorted(states, key=lambda c: states[c].seq):
        s = states[cid]
        extra = ""
        if s.status == "leased":
            extra = f" worker={s.worker} lease_until={s.lease_until:g}"
        elif s.terminal:
            extra = f" passed={s.passed} failed={s.failed}"
            if s.detail:
                extra += f" ({s.detail})"
        print(f"{cid}: {s.status} tenant={s.tenant} "
              f"priority={s.priority} nodes={s.nodes}{extra}")
    counts = queue.stats()
    print(", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    _print_live_status(args)
    return 0


def _print_live_status(args: argparse.Namespace) -> None:
    """Augment queue-fold state with live per-campaign progress.

    The supervisor's live-status artifact (``run --live-status``) is a
    sealed JSONL stream of windowed snapshots; the latest one carries
    per-campaign done/total counters and fleet-wide rates that the
    queue fold alone cannot know mid-slice.
    """
    import os

    path = args.live_status or f"{args.queue}.live.jsonl"
    if not os.path.exists(path):
        return
    from repro.obs.live import read_live_status

    _, statuses = read_live_status(path)
    if not statuses:
        return
    snap = statuses[-1].get("snapshot") or {}
    cases = snap.get("cases") or {}
    rates = snap.get("rates") or {}
    rate = rates.get("cases_per_second")
    print(
        f"live: t=+{snap.get('clock', 0):g}s  "
        f"{cases.get('total', 0)} case(s) done fleet-wide"
        + (f", {rate:g} cases/s" if rate else "")
        + f"  ({path})"
    )
    fleet = snap.get("fleet") or {}
    for cid in sorted(fleet):
        info = fleet[cid]
        total = info.get("total", 0)
        done = info.get("done", 0)
        pct = f" ({done * 100 // total}%)" if total else ""
        print(f"  {cid}: {done}/{total} case(s){pct}, "
              f"{info.get('slices', 0)} slice(s), {info.get('status', '?')}")
    for alert in snap.get("alerts") or []:
        print(f"  ! {alert}")


def _cmd_drain(args: argparse.Namespace) -> int:
    queue = CampaignQueue(args.queue)
    queue.request_drain(now=queue.max_time())
    print("drain requested")
    return 0


def _cmd_regressions(args: argparse.Namespace) -> int:
    timeline = ResultsTimeline(args.timeline)
    findings = timeline.detect_regressions(
        min_runs=args.min_runs, threshold=args.threshold
    )
    print(timeline.render(findings))
    regressed = [
        f for f in findings if f.change.direction == "regressed"
    ]
    return 1 if regressed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "submit": _cmd_submit,
        "run": _cmd_run,
        "status": _cmd_status,
        "drain": _cmd_drain,
        "regressions": _cmd_regressions,
    }[args.command]
    try:
        return handler(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
