"""The durable campaign queue: submit/claim/complete on sealed JSONL.

The queue is the fleet's record of truth, built on the same crash-safe
primitives as the campaign journal (:mod:`repro.obs.jsonl`): every
record is appended in a single fsynced ``write`` with a CRC32 ``cs``
seal, a torn tail heals on read, and the file is compacted atomically
once history dominates live state.  A supervisor that dies mid-fleet
therefore leaves a queue any successor can read and act on.

Record shapes (all carry ``"v"``, the schema version, and ``"t"``, the
simulated-clock time they were written at)::

    {"kind": "submit",   "id", "seq", "tenant", "priority", "nodes",
                         "spec": {...}}          a campaign enters the queue
    {"kind": "claim",    "id", "worker", "lease_until"}   lease granted
    {"kind": "renew",    "id", "worker", "lease_until"}   heartbeat
    {"kind": "release",  "id", "worker", "reason"}        lease given back
    {"kind": "complete", "id", "worker", "status", "detail",
                         "passed", "failed"}              terminal state
    {"kind": "drain",         "worker"}        a supervisor drained cleanly
    {"kind": "drain-request"}                  operator asked for a drain

**Lease state machine.**  A campaign is ``pending`` after submit (or
release), ``leased`` while a worker holds an unexpired lease, and
terminal (``completed`` / ``failed`` / ``aborted``) after a complete
record.  Leases live on the *simulated* clock: a worker renews its
lease every scheduling slice, and a lease whose holder stopped renewing
-- a crashed or hung supervisor -- simply expires, making the campaign
claimable again.  The next claimant resumes it from its campaign
journal (``--resume`` semantics), so reclaim never re-runs completed
cases.  A worker may also reclaim its *own* unexpired lease (a
restarted supervisor keeps its identity) without waiting out the TTL.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.jsonl import JsonlAppender, read_jsonl, write_jsonl_atomic
from repro.runner.resilience import SCHEMA_VERSION, check_record_version

__all__ = ["CampaignQueue", "CampaignState", "QueueError"]

#: campaign statuses that mean "this campaign will never run again"
TERMINAL_STATUSES = ("completed", "failed", "aborted")


class QueueError(ValueError):
    """An operation inconsistent with the queue's current state."""


@dataclass
class CampaignState:
    """The folded state of one campaign (latest record per keyspace)."""

    id: str
    seq: int
    spec: Dict[str, Any]
    tenant: str = "default"
    priority: int = 0
    nodes: int = 1
    #: "pending" | "leased" | "completed" | "failed" | "aborted"
    status: str = "pending"
    worker: Optional[str] = None
    lease_until: Optional[float] = None
    detail: str = ""
    passed: int = 0
    failed: int = 0
    submitted_at: float = 0.0
    completed_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def claimable(self, worker: str, now: float) -> bool:
        """Whether *worker* may (re)claim this campaign at *now*.

        Pending campaigns are free; a leased one is claimable when the
        lease expired (the holder stopped heartbeating) or when the
        claimant *is* the holder (a restarted supervisor taking its own
        work back).
        """
        if self.terminal:
            return False
        if self.status == "pending":
            return True
        if self.worker == worker:
            return True
        return self.lease_until is not None and self.lease_until <= now


class CampaignQueue:
    """Durable multi-campaign queue over one sealed JSONL file."""

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self.sync = sync
        self._appender = JsonlAppender(path, sync=sync)
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        record = {"v": SCHEMA_VERSION, **record}
        with self._lock:
            self._appender.append(record)
        return record

    def submit(
        self,
        spec: Dict[str, Any],
        campaign_id: Optional[str] = None,
        tenant: str = "default",
        priority: int = 0,
        nodes: int = 1,
        now: float = 0.0,
    ) -> str:
        """Enqueue one campaign; returns its (unique) campaign id.

        When no id is given one is derived from the submission ordinal
        plus a content digest of the spec -- unique per submission, so
        the same spec can be queued repeatedly (that is what produces
        the sequential runs the results timeline tracks).
        """
        seq = self._next_seq()
        if campaign_id is None:
            import hashlib
            import json

            digest = hashlib.sha256(
                json.dumps(spec, sort_keys=True).encode("utf-8")
            ).hexdigest()[:8]
            campaign_id = f"c{seq:04d}-{digest}"
        elif campaign_id in self.load():
            raise QueueError(
                f"campaign id {campaign_id!r} already queued; ids are "
                f"unique per submission"
            )
        self._append({
            "kind": "submit",
            "t": now,
            "id": campaign_id,
            "seq": seq,
            "tenant": tenant,
            "priority": int(priority),
            "nodes": int(nodes),
            "spec": spec,
        })
        return campaign_id

    def claim(
        self,
        worker: str,
        now: float,
        lease_seconds: float,
        accept: Optional[Callable[[CampaignState], bool]] = None,
    ) -> Optional[CampaignState]:
        """Lease the best claimable campaign to *worker*, if any.

        Selection is by (highest priority, lowest submission ordinal) --
        deterministic, so every supervisor replays the same claim order.
        ``accept`` lets the caller veto candidates (tenant quota gating)
        without losing their place in the queue.  Returns the claimed
        state (with the fresh lease applied) or ``None``.
        """
        candidates = [
            s for s in self.load().values() if s.claimable(worker, now)
        ]
        candidates.sort(key=lambda s: (-s.priority, s.seq))
        for state in candidates:
            if accept is not None and not accept(state):
                continue
            state.status = "leased"
            state.worker = worker
            state.lease_until = now + float(lease_seconds)
            self._append({
                "kind": "claim",
                "t": now,
                "id": state.id,
                "worker": worker,
                "lease_until": state.lease_until,
            })
            return state
        return None

    def renew(
        self, campaign_id: str, worker: str, now: float, lease_seconds: float
    ) -> float:
        """Heartbeat: extend *worker*'s lease; returns the new expiry."""
        lease_until = now + float(lease_seconds)
        self._append({
            "kind": "renew",
            "t": now,
            "id": campaign_id,
            "worker": worker,
            "lease_until": lease_until,
        })
        return lease_until

    def release(
        self, campaign_id: str, worker: str, now: float, reason: str = ""
    ) -> None:
        """Give a lease back without completing (graceful drain)."""
        self._append({
            "kind": "release",
            "t": now,
            "id": campaign_id,
            "worker": worker,
            "reason": reason,
        })

    def complete(
        self,
        campaign_id: str,
        worker: str,
        status: str,
        now: float,
        detail: str = "",
        passed: int = 0,
        failed: int = 0,
    ) -> None:
        """Record a campaign's terminal state."""
        if status not in TERMINAL_STATUSES:
            raise QueueError(
                f"terminal status must be one of {TERMINAL_STATUSES}, "
                f"got {status!r}"
            )
        self._append({
            "kind": "complete",
            "t": now,
            "id": campaign_id,
            "worker": worker,
            "status": status,
            "detail": detail,
            "passed": int(passed),
            "failed": int(failed),
        })

    def mark_drain(self, worker: str, now: float) -> None:
        """Record that *worker* drained gracefully at *now*."""
        self._append({"kind": "drain", "t": now, "worker": worker})

    def request_drain(self, now: float = 0.0) -> None:
        """Operator-side drain request (``repro-fleet drain``).

        A running supervisor polls :meth:`drain_requested_since` at
        every slice boundary, so the request takes effect at the next
        checkpoint -- the durable-queue equivalent of SIGTERM.
        """
        self._append({"kind": "drain-request", "t": now})

    # -- reading -------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        records = read_jsonl(self.path)
        for record in records:
            check_record_version(record, self.path)
        return records

    def load(self) -> Dict[str, CampaignState]:
        """Fold the record stream into per-campaign state (newest wins)."""
        states: Dict[str, CampaignState] = {}
        for record in self.entries():
            kind = record.get("kind")
            if kind == "submit":
                cid = record["id"]
                states[cid] = CampaignState(
                    id=cid,
                    seq=int(record.get("seq", 0)),
                    spec=record.get("spec") or {},
                    tenant=record.get("tenant", "default"),
                    priority=int(record.get("priority", 0)),
                    nodes=int(record.get("nodes", 1)),
                    submitted_at=float(record.get("t", 0.0)),
                )
                continue
            state = states.get(record.get("id", ""))
            if state is None or state.terminal:
                continue  # releases/renews after complete carry no news
            if kind in ("claim", "renew"):
                state.status = "leased"
                state.worker = record.get("worker")
                state.lease_until = float(record.get("lease_until", 0.0))
            elif kind == "release":
                state.status = "pending"
                state.worker = None
                state.lease_until = None
            elif kind == "complete":
                state.status = record.get("status", "aborted")
                state.worker = record.get("worker")
                state.lease_until = None
                state.detail = record.get("detail", "")
                state.passed = int(record.get("passed", 0))
                state.failed = int(record.get("failed", 0))
                state.completed_at = float(record.get("t", 0.0))
        return states

    def next_lease_expiry(self) -> Optional[float]:
        """The earliest lease expiry among leased campaigns, if any."""
        expiries = [
            s.lease_until
            for s in self.load().values()
            if s.status == "leased" and s.lease_until is not None
        ]
        return min(expiries) if expiries else None

    def max_time(self) -> float:
        """The latest simulated time any record carries (clock restore).

        A restarted supervisor must not hand out leases that predate
        ones already in the queue, so its clock resumes from here.
        """
        times = [float(r.get("t", 0.0)) for r in self.entries()]
        return max(times) if times else 0.0

    def drain_requested_since(self, t: float) -> bool:
        """A drain-request recorded *strictly after* ``t``?

        Strict: a supervisor started at or after the request's time was
        not the one being asked to stop -- requests must not outlive
        the drain they triggered and stall every later supervisor.
        """
        return any(
            r.get("kind") == "drain-request" and float(r.get("t", 0.0)) > t
            for r in self.entries()
        )

    def _next_seq(self) -> int:
        seqs = [
            int(r.get("seq", 0))
            for r in self.entries()
            if r.get("kind") == "submit"
        ]
        return (max(seqs) + 1) if seqs else 1

    def stats(self) -> Dict[str, int]:
        """Status-line counts per campaign state."""
        counts = {
            "pending": 0, "leased": 0,
            "completed": 0, "failed": 0, "aborted": 0,
        }
        for state in self.load().values():
            counts[state.status] = counts.get(state.status, 0) + 1
        return counts

    # -- maintenance ---------------------------------------------------------
    def compact(self) -> int:
        """Atomically drop records made redundant by newer ones.

        Keeps, per campaign, the submit record plus the latest
        state-bearing record (claim/renew/release/complete), the last
        drain marker and the last drain request; drops superseded
        heartbeats and stale claims.  The rewrite is atomic (temp +
        fsync + rename), same as journal compaction.  Returns the
        number of records dropped.
        """
        with self._lock:
            records = read_jsonl(self.path)
            for record in records:
                check_record_version(record, self.path)
            keep: set = set()
            latest_state: Dict[str, int] = {}
            last_drain = -1
            last_request = -1
            for i, record in enumerate(records):
                kind = record.get("kind")
                if kind == "submit":
                    keep.add(i)
                elif kind in ("claim", "renew", "release", "complete"):
                    latest_state[record.get("id", "")] = i
                elif kind == "drain":
                    last_drain = i
                elif kind == "drain-request":
                    last_request = i
                else:
                    keep.add(i)  # unknown shapes are never destroyed
            keep.update(latest_state.values())
            if last_drain >= 0:
                keep.add(last_drain)
            if last_request >= 0:
                keep.add(last_request)
            kept = [records[i] for i in sorted(keep)]
            dropped = len(records) - len(kept)
            if dropped <= 0:
                return 0
            write_jsonl_atomic(self.path, kept, sync=self.sync)
            return dropped
