"""The fleet supervisor: leases, bulkheads, slices, graceful drain.

One supervisor multiplexes many campaigns over one simulated cluster:

* it **claims** campaigns from the durable queue under heartbeat
  leases on the fault clock (per-tenant node quotas and priorities
  gate what it may hold concurrently);
* it **slices** each claimed campaign -- runs the next ``slice_cases``
  cases through the embeddable :class:`CampaignService`, round-robin
  across campaigns, renewing leases at every slice boundary.  The
  cursor into a campaign is *derived from its journal* (the largest
  dependency-ordered prefix with journal records), never held only in
  memory, so any successor supervisor resumes exactly where the bytes
  say the campaign is;
* it **bulkheads** campaigns from each other -- a circuit-breaker
  trip, :class:`DurabilityError` or any ``CampaignAborted`` becomes
  *that campaign's* terminal queue record plus ``fleet.degraded.*``
  metrics, and the loop moves on;
* it **drains** gracefully -- :meth:`request_drain` (the SIGTERM path)
  or a ``drain-request`` queue record makes the supervisor finish its
  in-flight slices, release its leases, write a drain marker and
  return; a restarted supervisor reclaims and resumes with zero
  re-executed completed cases.

Crash semantics are exact, not best-effort: killing a supervisor at
*any* point leaves (a) a queue whose leases simply expire, (b)
campaign journals whose prefix property holds, and (c) perflogs that a
resumed run appends to byte-identically -- the fleet chaos test sweeps
kill points to prove it.  The ``supervisor-crash`` and ``lease-expire``
fault kinds (:mod:`repro.faults`) simulate those deaths
deterministically inside one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.faults import FaultClock, FaultPlan
from repro.fleet.queue import CampaignQueue, CampaignState
from repro.fleet.service import (
    CampaignConfigError,
    CampaignService,
    CampaignSpec,
    PreparedCampaign,
)
from repro.fleet.timeline import ResultsTimeline, foms_from_journal
from repro.obs.live import as_live_sink
from repro.obs.metrics import MetricsRegistry
from repro.runner.resilience import (
    COMPLETED_STATUSES,
    CampaignAborted,
    CampaignJournal,
    case_fingerprint,
)

__all__ = ["FleetReport", "FleetSupervisor", "SupervisorCrash"]


class SupervisorCrash(RuntimeError):
    """The supervisor process dying mid-fleet (simulated SIGKILL).

    Raised out of :meth:`FleetSupervisor.run` when a
    ``supervisor-crash`` fault fires: everything durable (queue,
    journals, perflogs) keeps whatever was committed before the crash
    point; nothing is released or completed.  A fresh supervisor
    constructed over the same queue recovers the fleet.
    """


@dataclass
class CampaignOutcome:
    """What one campaign came to under this supervisor."""

    id: str
    status: str  # "completed" | "failed" | "aborted" | "released" | "lost"
    detail: str = ""
    passed: int = 0
    failed: int = 0
    slices: int = 0


@dataclass
class FleetReport:
    worker: str
    outcomes: Dict[str, CampaignOutcome] = field(default_factory=dict)
    drained: bool = False
    metrics: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> List[CampaignOutcome]:
        return [o for o in self.outcomes.values() if o.status == "completed"]

    @property
    def degraded(self) -> List[CampaignOutcome]:
        return [
            o for o in self.outcomes.values()
            if o.status in ("aborted", "failed")
        ]

    def summary(self) -> str:
        lines = [f"FLEET SUMMARY ({self.worker})", "-" * 60]
        for cid in sorted(self.outcomes):
            o = self.outcomes[cid]
            detail = f" -- {o.detail}" if o.detail else ""
            lines.append(
                f"  {cid}: {o.status} "
                f"({o.passed} passed, {o.failed} failed, "
                f"{o.slices} slice(s)){detail}"
            )
        lines.append(
            f"{len(self.completed)} completed, {len(self.degraded)} "
            f"degraded, drained={str(self.drained).lower()}"
        )
        return "\n".join(lines)


@dataclass
class _Running:
    """Supervisor-side runtime for one leased campaign."""

    state: CampaignState
    spec: CampaignSpec
    prepared: PreparedCampaign
    journal: Optional[CampaignJournal]
    cursor: int = 0
    slices: int = 0
    zombie: bool = False  # lease-expire fired: stop renewing, let it lapse


class FleetSupervisor:
    """Runs the claim/slice/renew loop over a durable campaign queue.

    Parameters
    ----------
    queue:
        The durable campaign queue; its recorded simulated times seed
        this supervisor's clock so restarted supervisors never move
        time backwards.
    worker:
        This supervisor's identity in queue records.  A restarted
        supervisor reusing the same identity may reclaim its own
        unexpired leases immediately; a different identity waits for
        them to expire.
    slice_cases:
        Cases per campaign per scheduling round.
    slice_seconds:
        Simulated seconds one slice advances the clock -- the unit
        lease TTLs are measured against.
    lease_seconds:
        Heartbeat lease TTL; must comfortably exceed ``slice_seconds``
        or a healthy supervisor's leases expire mid-round.
    cluster_nodes / tenant_quotas:
        Concurrency gates: the node counts of concurrently held
        campaigns may not exceed the cluster total, nor a tenant's
        share exceed its quota.
    faults:
        A :class:`FaultPlan` consulted once per campaign slice for the
        fleet kinds (``supervisor-crash``, ``lease-expire``), keyed by
        campaign id.
    on_slice:
        Test/observer hook called after every slice with
        ``(campaign_id, slices_so_far)``.
    live:
        Live analytics plane: a path (sealed live-status artifact) or
        a shared :class:`~repro.obs.live.LiveStatsSink`.  The sink is
        threaded into every campaign slice and fed per-campaign fleet
        progress at each slice boundary; ``repro-fleet status`` and
        ``repro-top`` read the artifact from a second process.
    """

    def __init__(
        self,
        queue: CampaignQueue,
        worker: str = "fleet-0",
        service: Optional[CampaignService] = None,
        slice_cases: int = 4,
        slice_seconds: float = 1.0,
        lease_seconds: float = 10.0,
        max_concurrent: int = 4,
        cluster_nodes: Optional[int] = None,
        tenant_quotas: Optional[Dict[str, int]] = None,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        timeline: Optional[ResultsTimeline] = None,
        on_slice: Optional[Callable[[str, int], None]] = None,
        live: Optional[Any] = None,
    ):
        if slice_cases < 1:
            raise ValueError("slice_cases must be >= 1")
        if lease_seconds <= slice_seconds:
            raise ValueError(
                "lease_seconds must exceed slice_seconds, or healthy "
                "leases expire between heartbeats"
            )
        self.queue = queue
        self.worker = worker
        self.service = service or CampaignService()
        self.slice_cases = slice_cases
        self.slice_seconds = float(slice_seconds)
        self.lease_seconds = float(lease_seconds)
        self.max_concurrent = max_concurrent
        self.cluster_nodes = cluster_nodes
        self.tenant_quotas = dict(tenant_quotas or {})
        self.faults = faults
        self.metrics = metrics or MetricsRegistry()
        self.timeline = timeline
        self.on_slice = on_slice
        # the live analytics plane: one shared sink across every
        # campaign this supervisor holds (a path arms a sealed
        # live-status artifact that `repro-fleet status` / `repro-top`
        # tail from a second process)
        self.live = as_live_sink(live)
        # resume the simulated clock from the queue: leases this
        # supervisor grants must postdate every recorded one
        self.clock = (
            faults.clock if faults is not None
            else FaultClock(start=queue.max_time())
        )
        if self.clock.now < queue.max_time():
            self.clock.sleep(queue.max_time() - self.clock.now)
        self._drain_requested = False

    # -- external control -----------------------------------------------------
    def request_drain(self) -> None:
        """In-process drain request (the SIGTERM handler calls this)."""
        self._drain_requested = True

    # -- the supervision loop -------------------------------------------------
    def run(self) -> FleetReport:
        """Supervise until the queue is terminal, drained, or crashed."""
        report = FleetReport(worker=self.worker)
        started_at = self.clock.now
        running: Dict[str, _Running] = {}
        while True:
            if self._drain_due(started_at):
                self._drain(running, report)
                break
            self._fill_slots(running, report)
            if not running:
                if self._wait_for_leases():
                    continue
                break  # nothing claimable, nothing leased: fleet done
            # one slice per running campaign, priority-then-seq order --
            # the same deterministic order claims are granted in
            for cid in sorted(
                running,
                key=lambda c: (-running[c].state.priority,
                               running[c].state.seq),
            ):
                self._run_slice(cid, running, report)
                if self._drain_requested:
                    break  # honour SIGTERM at the next slice boundary
        report.metrics = self.metrics.snapshot()
        return report

    # -- claiming -------------------------------------------------------------
    def _fill_slots(
        self, running: Dict[str, _Running], report: FleetReport
    ) -> None:
        while len(running) < self.max_concurrent:
            state = self.queue.claim(
                self.worker,
                self.clock.now,
                self.lease_seconds,
                accept=self._admission(running),
            )
            if state is None:
                return
            self.metrics.counter("fleet.campaigns.claimed").add()
            try:
                spec = CampaignSpec.from_doc(state.spec)
                if spec.journal is None:
                    # fleet campaigns are always journaled -- the journal
                    # IS the resume cursor -- so an unjournaled spec gets
                    # a deterministic per-campaign path beside the queue
                    spec.journal = f"{self.queue.path}.journals/{state.id}.jsonl"
                    import os

                    os.makedirs(os.path.dirname(spec.journal), exist_ok=True)
                prepared = self.service.prepare(spec)
            except CampaignConfigError as exc:
                # an unpreparable campaign is its own failure, not ours
                self.metrics.counter("fleet.degraded.config").add()
                self.queue.complete(
                    state.id, self.worker, "failed", self.clock.now,
                    detail=str(exc),
                )
                report.outcomes[state.id] = CampaignOutcome(
                    id=state.id, status="failed", detail=str(exc)
                )
                continue
            journal = (
                CampaignJournal(spec.journal) if spec.journal else None
            )
            running[state.id] = _Running(
                state=state,
                spec=spec,
                prepared=prepared,
                journal=journal,
                cursor=self._journaled_prefix(prepared, journal),
            )

    def _admission(
        self, running: Dict[str, _Running]
    ) -> Callable[[CampaignState], bool]:
        """Quota gate for :meth:`CampaignQueue.claim`."""
        def accept(candidate: CampaignState) -> bool:
            if candidate.id in running:
                # own-worker reclaim is for *restarted* supervisors; a
                # live one must not re-claim what it already holds
                return False
            held = [rt.state for rt in running.values()]
            if self.cluster_nodes is not None:
                used = sum(s.nodes for s in held)
                if used + candidate.nodes > self.cluster_nodes:
                    self.metrics.counter("fleet.admission.cluster_full").add()
                    return False
            quota = self.tenant_quotas.get(candidate.tenant)
            if quota is not None:
                used = sum(
                    s.nodes for s in held if s.tenant == candidate.tenant
                )
                if used + candidate.nodes > quota:
                    self.metrics.counter("fleet.admission.quota").add()
                    return False
            return True
        return accept

    @staticmethod
    def _journaled_prefix(
        prepared: PreparedCampaign, journal: Optional[CampaignJournal]
    ) -> int:
        """The resume cursor: leading cases the journal already covers.

        Any journal record counts -- passed, skipped *or* failed: a
        failed case already consumed its retry budget, and re-offering
        it would loop the campaign forever.  The prefix property holds
        because journal appends happen in deterministic serial order
        under every execution policy.
        """
        if journal is None:
            return 0
        try:
            done = journal.load()
        except FileNotFoundError:
            return 0
        cursor = 0
        for case in prepared.cases:
            if case_fingerprint(case) not in done:
                break
            cursor += 1
        return cursor

    # -- slicing --------------------------------------------------------------
    def _run_slice(
        self,
        cid: str,
        running: Dict[str, _Running],
        report: FleetReport,
    ) -> None:
        rt = running[cid]
        if rt.journal is not None and rt.cursor >= len(rt.prepared.cases):
            # reclaimed a campaign whose journal already covers every
            # case (the predecessor died after its last slice landed)
            self._finalize(cid, rt, running, report)
            return
        chunk = (
            rt.prepared.cases[rt.cursor:rt.cursor + self.slice_cases]
            if rt.journal is not None
            else rt.prepared.cases  # unjournaled: all-or-nothing
        )
        crash = lease_expire = None
        if self.faults is not None:
            crash = self.faults.check("supervisor-crash", cid)
            lease_expire = self.faults.check("lease-expire", cid)
        if crash is not None:
            # die mid-slice: half the chunk lands durably, then SIGKILL
            chunk = chunk[: max(1, len(chunk) // 2)]
        try:
            run_report = rt.prepared.run(
                cases=chunk, resume=rt.journal is not None,
                live=self.live,
            )
        except CampaignAborted as exc:
            # backstop bulkhead: run_cases converts aborts into
            # report.aborted, but a trace-flush durability failure can
            # still surface here -- contain it identically
            self._terminal(cid, rt, running, report, "aborted", str(exc))
            return
        rt.slices += 1
        self.metrics.counter("fleet.slices").add()
        if run_report.metrics is not None:
            # fold the campaign's own counters into the fleet registry
            self.metrics.merge_snapshot(run_report.metrics)
        self.clock.sleep(self.slice_seconds)
        if crash is not None:
            self.metrics.counter("fleet.crashes.injected").add()
            raise SupervisorCrash(
                f"supervisor {self.worker} killed mid-slice of {cid} "
                f"(injected, attempt {crash.attempt})"
            )
        if run_report.aborted is not None:
            self.metrics.counter("fleet.degraded.aborted").add()
            self._terminal(
                cid, rt, running, report, "aborted", run_report.aborted
            )
            return
        rt.cursor += len(chunk)
        self._note_live(cid, rt, "running")
        if self.on_slice is not None:
            self.on_slice(cid, rt.slices)
        if rt.journal is None or rt.cursor >= len(rt.prepared.cases):
            self._finalize(cid, rt, running, report, run_report=run_report)
        elif lease_expire is not None:
            # the lease lapses un-renewed: this supervisor walks away
            # from the campaign mid-flight (a simulated hang) and the
            # queue's TTL makes it claimable again later
            self.metrics.counter("fleet.leases.expired").add()
            rt.zombie = True
            del running[cid]
            report.outcomes[cid] = CampaignOutcome(
                id=cid, status="lost", slices=rt.slices,
                detail="lease expired (injected)",
            )
            self._note_live(cid, rt, "lost")
        else:
            self.metrics.counter("fleet.leases.renewed").add()
            self.queue.renew(
                cid, self.worker, self.clock.now, self.lease_seconds
            )

    def _finalize(
        self,
        cid: str,
        rt: _Running,
        running: Dict[str, _Running],
        report: FleetReport,
        run_report: Optional[Any] = None,
    ) -> None:
        """Every case accounted for: complete + feed the timeline."""
        passed = failed = 0
        journal_records: List[Dict[str, Any]] = []
        if rt.journal is not None:
            # count from the journal, not in-memory reports: cases run
            # by a crashed predecessor supervisor count too
            done = rt.journal.load()
            journal_records = list(done.values())
            for record in journal_records:
                if record.get("status") in COMPLETED_STATUSES:
                    passed += 1
                else:
                    failed += 1
            rt.journal.compact()
        elif run_report is not None:
            passed = sum(1 for r in run_report.results if r.passed)
            failed = len(run_report.results) - passed
        status = "completed" if failed == 0 else "failed"
        self.metrics.counter(f"fleet.campaigns.{status}").add()
        self.queue.complete(
            cid, self.worker, status, self.clock.now,
            detail="" if failed == 0 else f"{failed} case(s) failed",
            passed=passed, failed=failed,
        )
        if self.timeline is not None and journal_records:
            self.timeline.record_run(
                cid,
                CampaignSpec.from_doc(rt.state.spec).content_id(),
                foms_from_journal(journal_records),
                now=self.clock.now,
            )
        del running[cid]
        report.outcomes[cid] = CampaignOutcome(
            id=cid, status=status, passed=passed, failed=failed,
            slices=rt.slices,
            detail="" if failed == 0 else f"{failed} case(s) failed",
        )
        self._note_live(cid, rt, status)

    def _terminal(
        self,
        cid: str,
        rt: _Running,
        running: Dict[str, _Running],
        report: FleetReport,
        status: str,
        detail: str,
    ) -> None:
        """Bulkhead: contain one campaign's abort as its terminal state."""
        self.queue.complete(
            cid, self.worker, status, self.clock.now, detail=detail
        )
        del running[cid]
        report.outcomes[cid] = CampaignOutcome(
            id=cid, status=status, detail=detail, slices=rt.slices
        )
        self._note_live(cid, rt, status)

    def _note_live(self, cid: str, rt: _Running, status: str) -> None:
        """Feed one campaign's progress into the live plane (if armed)."""
        if self.live is None:
            return
        total = len(rt.prepared.cases)
        done = total if status == "completed" else min(rt.cursor, total)
        self.live.note_fleet(
            cid,
            tenant=rt.state.tenant,
            nodes=rt.state.nodes,
            done=done,
            total=total,
            slices=rt.slices,
            status=status,
            now=self.clock.now,
        )
        self.live.emit_status(self.clock.now)

    # -- drain / idle ---------------------------------------------------------
    def _drain_due(self, started_at: float) -> bool:
        if self._drain_requested:
            return True
        if self.queue.drain_requested_since(started_at):
            self._drain_requested = True
            return True
        return False

    def _drain(
        self, running: Dict[str, _Running], report: FleetReport
    ) -> None:
        """Checkpoint + release everything, then mark the drain.

        In-flight slices already finished (drain is honoured at slice
        boundaries only) and their cases are journaled, so release is
        just giving the leases back: nothing is lost, nothing re-runs.
        """
        for cid in sorted(running):
            rt = running.pop(cid)
            self.queue.release(cid, self.worker, self.clock.now,
                               reason="drain")
            report.outcomes[cid] = CampaignOutcome(
                id=cid, status="released", slices=rt.slices,
                detail="drained",
            )
        self.queue.mark_drain(self.worker, self.clock.now)
        self.metrics.counter("fleet.drains").add()
        report.drained = True

    def _wait_for_leases(self) -> bool:
        """Idle path: sleep to the next foreign lease expiry, if any.

        Returns ``True`` when there is something to wait for (another
        worker's lease that may lapse), ``False`` when every campaign
        is terminal or the queue is empty of work for us.
        """
        states = self.queue.load().values()
        open_states = [s for s in states if not s.terminal]
        if not open_states:
            return False
        expiry = self.queue.next_lease_expiry()
        if expiry is None:
            return False
        if expiry > self.clock.now:
            self.clock.sleep(expiry - self.clock.now)
        else:
            self.clock.sleep(self.slice_seconds)
        return True
