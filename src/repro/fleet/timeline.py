"""The longitudinal results timeline: FOMs across fleet runs.

A perflog answers "what did this campaign measure"; the timeline
answers "what has this *spec* measured every time the fleet ran it".
Each completed campaign appends one sealed record carrying its figures
of merit keyed by (benchmark test x system x spec content address), so
re-submissions of the same spec accumulate into ordered per-cell series
that :func:`repro.core.regression.detect_change_point` can scan for
sustained level shifts -- the cross-run promotion of the per-run CI
gate.

Records (sealed JSONL, same durability contract as the queue)::

    {"kind": "run",      "v", "t", "campaign", "spec_id",
     "foms": [{"test", "system", "var", "value", "unit"}, ...]}
    {"kind": "baseline", "v", "t", "spec_id", "through"}

A ``baseline`` record is the operator accepting everything up to run
index ``through`` for a spec: change-point detection resumes after it,
so an acknowledged shift (a compiler upgrade, a faster interconnect)
stops being re-flagged on every fleet pass.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.regression import ChangePoint, detect_change_point
from repro.obs.jsonl import JsonlAppender, read_jsonl
from repro.runner.resilience import SCHEMA_VERSION, check_record_version

__all__ = ["ResultsTimeline", "TimelineFinding", "foms_from_report"]

#: one timeline cell: (test, system, spec content id, perf var)
CellKey = Tuple[str, str, str, str]


def foms_from_report(report: Any) -> List[Dict[str, Any]]:
    """Extract the FOM rows a RunReport contributes to the timeline."""
    foms: List[Dict[str, Any]] = []
    for result in report.results:
        if not result.passed or not result.perfvars:
            continue
        for var, (value, unit) in sorted(result.perfvars.items()):
            foms.append({
                "test": result.case.test.name,
                "system": result.case.platform,
                "var": var,
                "value": float(value),
                "unit": unit,
            })
    return foms


def foms_from_journal(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """FOM rows from journal case records (crash-surviving path).

    A campaign finished by a *restarted* supervisor holds results run
    by its predecessor only in the journal, so the timeline ingests
    from there: every journaled case record carries the same perfvars
    the in-memory result did.
    """
    foms: List[Dict[str, Any]] = []
    for record in records:
        if record.get("status") != "passed":
            continue
        for var, pair in sorted((record.get("perfvars") or {}).items()):
            foms.append({
                "test": record.get("test", ""),
                "system": record.get("platform", ""),
                "var": var,
                "value": float(pair[0]),
                "unit": pair[1] if len(pair) > 1 else "",
            })
    return foms


@dataclass(frozen=True)
class TimelineFinding:
    """A change point in one timeline cell."""

    key: CellKey
    change: ChangePoint
    runs: int

    @property
    def label(self) -> str:
        test, system, spec_id, var = self.key
        return f"{test}/{var} @{system} [{spec_id}]"


class ResultsTimeline:
    """Append-per-campaign FOM store with cross-run regression checks."""

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self.sync = sync
        self._appender = JsonlAppender(path, sync=sync)
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------------
    def record_run(
        self,
        campaign_id: str,
        spec_id: str,
        foms: Sequence[Dict[str, Any]],
        now: float = 0.0,
    ) -> None:
        """Append one completed campaign's FOMs."""
        with self._lock:
            self._appender.append({
                "kind": "run",
                "v": SCHEMA_VERSION,
                "t": now,
                "campaign": campaign_id,
                "spec_id": spec_id,
                "foms": list(foms),
            })

    def set_baseline(
        self, spec_id: str, through: int, now: float = 0.0
    ) -> None:
        """Accept all runs of *spec_id* up to index *through* (exclusive)."""
        with self._lock:
            self._appender.append({
                "kind": "baseline",
                "v": SCHEMA_VERSION,
                "t": now,
                "spec_id": spec_id,
                "through": int(through),
            })

    # -- reading -------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        records = read_jsonl(self.path)
        for record in records:
            check_record_version(record, self.path)
        return records

    def series(self) -> Dict[CellKey, List[float]]:
        """Ordered value series per (test, system, spec_id, var) cell.

        File order *is* run order -- the same append-only convention
        perflog regression tracking relies on, so no wall clock is
        trusted anywhere.
        """
        out: Dict[CellKey, List[float]] = {}
        for record in self.entries():
            if record.get("kind") != "run":
                continue
            spec_id = record.get("spec_id", "")
            for fom in record.get("foms", []):
                key = (fom.get("test", ""), fom.get("system", ""),
                       spec_id, fom.get("var", ""))
                out.setdefault(key, []).append(float(fom.get("value", 0.0)))
        return out

    def run_count(self, spec_id: str) -> int:
        return sum(
            1 for r in self.entries()
            if r.get("kind") == "run" and r.get("spec_id") == spec_id
        )

    def baseline_through(self, spec_id: str) -> int:
        """The latest accepted-through run index for a spec (0 if none)."""
        through = 0
        for record in self.entries():
            if (record.get("kind") == "baseline"
                    and record.get("spec_id") == spec_id):
                through = int(record.get("through", 0))
        return through

    def detect_regressions(
        self,
        min_runs: int = 5,
        threshold: float = 0.05,
        zscore_gate: float = 2.0,
        higher_is_better: Optional[Dict[str, bool]] = None,
    ) -> List[TimelineFinding]:
        """Scan every cell with enough history for a sustained shift.

        Cells with fewer than ``min_runs`` runs are skipped -- a fleet
        needs a few passes before "this series stepped" means anything.
        Baselines gate detection per spec: accepted runs are still part
        of the before-segment statistics but cannot *be* the change
        point again.
        """
        direction = dict(higher_is_better or {})
        findings: List[TimelineFinding] = []
        baselines: Dict[str, int] = {}
        for key, values in sorted(self.series().items()):
            if len(values) < min_runs:
                continue
            test, system, spec_id, var = key
            if spec_id not in baselines:
                baselines[spec_id] = self.baseline_through(spec_id)
            change = detect_change_point(
                values,
                threshold=threshold,
                zscore_gate=zscore_gate,
                higher_is_better=direction.get(var, True),
                start=baselines[spec_id],
            )
            if change is not None:
                findings.append(
                    TimelineFinding(key=key, change=change, runs=len(values))
                )
        return findings

    def render(self, findings: Sequence[TimelineFinding]) -> str:
        lines = ["FLEET TIMELINE REGRESSIONS", "-" * 60]
        if not findings:
            lines.append("no sustained shifts detected")
        for f in sorted(findings, key=lambda f: f.label):
            c = f.change
            arrow = "v" if c.direction == "regressed" else "^"
            lines.append(
                f"[{arrow}] {f.label}: {c.before_mean:.4g} -> "
                f"{c.after_mean:.4g} at run {c.index}/{f.runs} "
                f"({c.change_fraction:+.1%}, z={c.zscore:+.1f}) "
                f"[{c.direction}]"
            )
        return "\n".join(lines)
