"""The embeddable campaign API extracted from ``repro-bench``.

``runner/cli.py`` used to be the only way to run a campaign end to end:
suite loading, site/system resolution, variable parsing, case expansion,
flag validation and the ``run_cases`` call all lived inside ``main()``.
The fleet supervisor needs exactly that pipeline *without* the terminal
attached, so it moves here:

* :class:`CampaignSpec` -- a plain-data description of one campaign
  (the CLI namespace, made serialisable so it can ride in a queue
  record);
* :class:`CampaignService` -- turns a spec into a
  :class:`PreparedCampaign`: a configured :class:`Executor`, the
  dependency-ordered case list and validated run options;
* :class:`PreparedCampaign` -- runs the whole campaign or any slice of
  it (``run(cases=..., resume=True)``), which is what lets the
  supervisor multiplex many campaigns over one simulated cluster and
  resume them after a crash.

``repro-bench`` is now one client of this API and ``repro-fleet``
another; both surface the same validation errors
(:class:`CampaignConfigError`) with the same messages the CLI always
printed.
"""

from __future__ import annotations

import socket
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.runner.config import ConfigError, SiteConfig, default_site_config
from repro.runner.executor import Executor, RunReport
from repro.runner.parallel import order_by_dependencies
from repro.runner.resilience import RetryPolicy

__all__ = [
    "CampaignConfigError",
    "CampaignService",
    "CampaignSpec",
    "PreparedCampaign",
]


class CampaignConfigError(ValueError):
    """A campaign spec that cannot be turned into a runnable campaign.

    The message carries no ``error:`` prefix; clients (CLIs, the fleet
    supervisor) decorate it for their own surface.
    """


@dataclass
class CampaignSpec:
    """Everything needed to run one campaign, as plain data.

    Field names track the ``repro-bench`` flags they came from; the
    whole record round-trips through JSON (:meth:`to_doc` /
    :meth:`from_doc`) so a spec can live inside a durable queue record
    and be re-hydrated by whichever supervisor claims it.
    """

    suites: List[str] = field(default_factory=list)
    system: Optional[str] = None
    site_yaml: List[str] = field(default_factory=list)
    setvar: List[str] = field(default_factory=list)
    spack_var: List[str] = field(default_factory=list)
    name: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    tags: List[str] = field(default_factory=list)
    job_options: List[str] = field(default_factory=list)
    environs: List[str] = field(default_factory=list)
    perflog_dir: Optional[str] = "perflogs"
    policy: str = "serial"
    max_workers: int = 4
    max_retries: int = 2
    max_failures: Optional[int] = None
    journal: Optional[str] = None
    journal_batch: int = 1
    result_store: Optional[str] = None
    inject_faults: Optional[str] = None
    fault_seed: int = 0
    durability: str = "strict"
    watchdog: Optional[str] = None
    speculate: bool = False
    straggler_factor: float = 2.0
    drain_after: Optional[int] = None
    trace: Optional[str] = None
    metrics: bool = False
    #: live analytics plane: stream sealed status snapshots here while
    #: the campaign runs (``repro-bench --live-status`` / ``repro-top``)
    live_status: Optional[str] = None
    #: pin perflog timestamps (fleet determinism / byte-identity tests)
    perflog_timestamp: Optional[str] = None

    def to_doc(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})

    def content_id(self) -> str:
        """Content address of the spec -- the longitudinal-timeline key.

        Two submissions of the same spec share a content id (their FOMs
        land on the same timeline row), while any change to what runs
        -- suite, system, variables, environment -- starts a new one.
        Run-mechanics fields (policy, workers, journal paths, fault
        injection) are excluded: they change *how* the campaign runs,
        not *what* it measures.
        """
        import hashlib
        import json

        measured = {
            "suites": sorted(self.suites),
            "system": self.system,
            "site_yaml": list(self.site_yaml),
            "setvar": sorted(self.setvar),
            "spack_var": sorted(self.spack_var),
            "name": sorted(self.name),
            "exclude": sorted(self.exclude),
            "tags": sorted(self.tags),
            "job_options": sorted(self.job_options),
            "environs": sorted(self.environs),
        }
        payload = json.dumps(measured, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class PreparedCampaign:
    """A validated, ready-to-run campaign.

    ``cases`` is the dependency-ordered expansion; ``run()`` executes
    all of it, or -- for a supervisor multiplexing several campaigns --
    any contiguous slice of it with ``resume=True`` so completed work
    journals forward.  ``warnings`` collects non-fatal degradations
    (e.g. a result store probe failure under ``durability='degrade'``)
    for the client to surface however it likes.
    """

    spec: CampaignSpec
    executor: Executor
    cases: List[Any]
    run_options: Dict[str, Any]
    #: the resolved target, for specs that left ``system`` to detection
    system: Optional[str] = None
    warnings: List[str] = field(default_factory=list)

    def run(
        self,
        cases: Optional[Sequence[Any]] = None,
        resume: bool = False,
        live: Optional[Any] = None,
    ) -> RunReport:
        options = dict(self.run_options)
        if resume:
            options["resume"] = True
        if live is not None:
            # a supervisor shares one LiveStatsSink across campaigns;
            # it overrides any per-spec live-status path
            options["live"] = live
        return self.executor.run_cases(
            self.cases if cases is None else list(cases), **options
        )


class CampaignService:
    """Builds runnable campaigns from :class:`CampaignSpec` documents."""

    def __init__(self, site: Optional[SiteConfig] = None):
        self._base_site = site

    # -- spec -> prepared campaign ---------------------------------------
    def prepare(
        self,
        spec: CampaignSpec,
        resume: bool = False,
    ) -> PreparedCampaign:
        """Validate *spec* end to end and return a runnable campaign.

        Raises :class:`CampaignConfigError` on anything ``repro-bench``
        would have rejected at argument-validation time, with the same
        message text.
        """
        if not spec.suites:
            raise CampaignConfigError("no benchmarks selected; use -c <suite>")
        classes = self._load_classes(spec.suites)
        site = self._build_site(spec.site_yaml)
        system = self._resolve_system(spec.system, site)
        setvars, spec_override = self._parse_variables(spec)
        job_opts = _parse_job_options(spec.job_options)
        self._validate_numeric(spec, resume)
        warnings: List[str] = []
        result_store = self._probe_result_store(spec, warnings)
        faults = self._parse_faults(spec)
        watchdog = self._parse_watchdog(spec)
        retry = RetryPolicy(
            max_attempts=spec.max_retries + 1, seed=spec.fault_seed
        )

        executor = Executor(
            site=site,
            perflog_prefix=spec.perflog_dir,
            perflog_timestamp=spec.perflog_timestamp,
        )
        try:
            expanded = executor.expand_cases(
                classes,
                system,
                environs=spec.environs or None,
                setvars=setvars,
                spec_override=spec_override,
                account=job_opts["account"],
                qos=job_opts["qos"],
                name_patterns=spec.name or None,
                exclude=spec.exclude or None,
                tags=spec.tags or None,
            )
        except Exception as exc:
            raise CampaignConfigError(str(exc)) from exc
        if not expanded:
            raise CampaignConfigError("no tests match the selection")

        run_options: Dict[str, Any] = {
            "policy": spec.policy,
            "workers": spec.max_workers,
            "retry": retry,
            "faults": faults,
            "max_failures": spec.max_failures,
            "journal": spec.journal,
            "resume": resume,
            "watchdog": watchdog,
            "speculation": spec.speculate,
            "straggler_factor": spec.straggler_factor,
            "drain_after": spec.drain_after,
            "trace": spec.trace,
            "metrics": spec.metrics,
            "journal_batch": spec.journal_batch,
            "result_store": result_store,
            "durability": spec.durability,
            "live": spec.live_status,
        }
        return PreparedCampaign(
            spec=spec,
            executor=executor,
            cases=order_by_dependencies(expanded),
            run_options=run_options,
            system=system,
            warnings=warnings,
        )

    def run(self, spec: CampaignSpec, resume: bool = False) -> RunReport:
        """One-shot: prepare and run the whole campaign."""
        prepared = self.prepare(spec, resume=resume)
        for warning in prepared.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        return prepared.run()

    # -- the pieces ``repro-bench`` main() used to inline -----------------
    def _load_classes(self, suites: Sequence[str]) -> List[type]:
        from repro.runner.cli import load_suite

        classes: List[type] = []
        try:
            for path in suites:
                classes.extend(load_suite(path))
        except KeyError as exc:
            # KeyError str() wraps its message in quotes; keep that --
            # it is what repro-bench has always printed
            raise CampaignConfigError(str(exc)) from exc
        return classes

    def _build_site(self, site_yaml: Sequence[str]) -> SiteConfig:
        site = self._base_site or default_site_config()
        for site_path in site_yaml:
            try:
                with open(site_path, encoding="utf-8") as fh:
                    site.merge_yaml(fh.read())
            except OSError as exc:
                raise CampaignConfigError(
                    f"cannot read --site {site_path}: {exc}"
                ) from exc
            except ConfigError as exc:
                raise CampaignConfigError(str(exc)) from exc
        return site

    def _resolve_system(
        self, system: Optional[str], site: SiteConfig
    ) -> str:
        if system is not None:
            return system
        detected = site.detect(socket.gethostname())
        if detected is None:
            raise CampaignConfigError(
                "cannot auto-detect the system (ambiguous login node "
                "names); pass --system=<name> explicitly"
            )
        return detected

    def _parse_variables(self, spec: CampaignSpec):
        try:
            setvars = _parse_assignments(spec.setvar)
            spack_vars = _parse_assignments(spec.spack_var)
        except ValueError as exc:
            raise CampaignConfigError(str(exc)) from exc
        spec_override = spack_vars.pop("spack_spec", None)
        spack_vars.pop("build_locally", None)  # meaningless under simulation
        setvars.update(spack_vars)
        return setvars, spec_override

    def _validate_numeric(self, spec: CampaignSpec, resume: bool) -> None:
        if spec.max_workers < 1:
            raise CampaignConfigError("-j/--max-workers must be >= 1")
        if spec.max_retries < 0:
            raise CampaignConfigError("--max-retries must be >= 0")
        if resume and not spec.journal:
            raise CampaignConfigError("--resume requires --journal PATH")
        if spec.straggler_factor <= 1.0:
            raise CampaignConfigError("--straggler-factor must be > 1")
        if spec.drain_after is not None and spec.drain_after < 1:
            raise CampaignConfigError("--drain-after must be >= 1")
        if spec.journal_batch < 1:
            raise CampaignConfigError("--journal-batch must be >= 1")

    def _probe_result_store(
        self, spec: CampaignSpec, warnings: List[str]
    ) -> Optional[str]:
        if not spec.result_store:
            return None
        from repro.runner.cli import _probe_writable_dir

        # fail at validation time, not hours in at the first put()
        probe_err = _probe_writable_dir(spec.result_store)
        if probe_err is None:
            return spec.result_store
        if spec.durability == "degrade":
            warnings.append(
                f"--result-store {spec.result_store} is not writable "
                f"({probe_err}); continuing without the result store"
            )
            return None
        raise CampaignConfigError(
            f"--result-store directory {spec.result_store} is not "
            f"writable: {probe_err}"
        )

    def _parse_faults(self, spec: CampaignSpec):
        if not spec.inject_faults:
            return None
        from repro.faults import FaultPlan, FaultSpecError

        try:
            return FaultPlan.parse(spec.inject_faults, seed=spec.fault_seed)
        except FaultSpecError as exc:
            raise CampaignConfigError(f"--inject-faults: {exc}") from exc

    def _parse_watchdog(self, spec: CampaignSpec):
        if not spec.watchdog:
            return None
        from repro.runner.watchdog import WatchdogSpecError, as_watchdog

        try:
            return as_watchdog(spec.watchdog)
        except WatchdogSpecError as exc:
            raise CampaignConfigError(f"--watchdog: {exc}") from exc


def _parse_assignments(pairs: Sequence[str]) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"expected VAR=VALUE, got {pair!r}")
        key, _, value = pair.partition("=")
        out[key.strip()] = value.strip().strip("'\"")
    return out


def _parse_job_options(opts: Sequence[str]) -> Dict[str, Optional[str]]:
    """Extract account/qos from -J options (the rest are recorded only)."""
    parsed: Dict[str, Optional[str]] = {"account": None, "qos": None}
    for opt in opts:
        text = opt.strip().strip("'\"")
        for key in ("account", "qos"):
            marker = f"--{key}="
            if text.startswith(marker):
                parsed[key] = text[len(marker):]
    return parsed
