"""Pure-Python reference implementations of the analytics kernels.

This module preserves the row-at-a-time algorithms the vectorized
kernels in :mod:`repro.postprocess.dataframe` and the block-wise parser
in :mod:`repro.postprocess.perflog_reader` replaced.  They serve two
jobs:

* **Executable specification** -- the property tests in
  ``tests/postprocess/test_kernels_property.py`` assert that the
  vectorized kernels are *result-identical* to these functions on
  randomized frames (mixed dtypes, missing columns, duplicate keys,
  empty groups).
* **Perf baseline** -- ``benchmarks/test_postprocess_throughput.py``
  measures the vectorized ingest/groupby speedup against this path (the
  pre-vectorization reader), so the committed speedups in
  ``BENCH_postprocess.json`` stay honest.

The semantics here include the schema fixes that rode along with the
vectorization (empty-frame-preserving ``concat``, duplicate-rejecting
``pivot``): reference and vectorized paths implement the same contract
with independent algorithms.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.postprocess.dataframe import DataFrame, DataFrameError
from repro.runner.perflog import PERFLOG_FIELDS

__all__ = [
    "reference_read_perflog",
    "reference_concat",
    "reference_groupby",
    "reference_pivot",
    "reference_filter",
    "reference_unique",
]

_NUMERIC = {"perf_value", "num_tasks"}


def _parse_line(line: str, path: str, lineno: int) -> dict:
    """Row-at-a-time perflog line parser (the pre-vectorization path)."""
    from repro.postprocess.perflog_reader import PerflogFormatError

    parts = line.rstrip("\n").split("|")
    if len(parts) != len(PERFLOG_FIELDS):
        raise PerflogFormatError(
            f"{path}:{lineno}: expected {len(PERFLOG_FIELDS)} fields, "
            f"got {len(parts)}"
        )
    rec = dict(zip(PERFLOG_FIELDS, parts))
    for key in _NUMERIC:
        try:
            rec[key] = float(rec[key])
        except ValueError as exc:
            raise PerflogFormatError(
                f"{path}:{lineno}: field {key}={rec[key]!r} is not numeric"
            ) from exc
    return rec


def reference_read_perflog(path: str) -> DataFrame:
    """One perflog file -> DataFrame, one dict per row (pre-PR reader)."""
    from repro.postprocess.perflog_reader import PerflogFormatError

    header_line = "|".join(PERFLOG_FIELDS)
    records = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped == header_line:
            continue  # initial header or an append-coalescing boundary
        if lineno == 1 and stripped.startswith("timestamp|"):
            raise PerflogFormatError(
                f"{path}: unexpected header {tuple(stripped.split('|'))}"
            )
        records.append(_parse_line(line, path, lineno))
    frame = DataFrame.from_records(records, columns=list(PERFLOG_FIELDS))
    frame["perflog_path"] = [path] * len(frame)
    return frame


def reference_concat(frames: Sequence[DataFrame]) -> DataFrame:
    """Row-wise concatenation via ``.tolist()`` accumulation."""
    names: List[str] = []
    for f in frames:
        for name in f.columns:
            if name not in names:
                names.append(name)
    live = [f for f in frames if len(f) > 0]
    if not live:
        out = DataFrame()
        for f in frames:
            for name in f.columns:
                if name not in out._cols:
                    out._cols[name] = f[name][:0].copy()
        return out
    data: Dict[str, List[Any]] = {n: [] for n in names}
    for f in live:
        n = len(f)
        for name in names:
            if name in f:
                data[name].extend(f[name].tolist())
            else:
                data[name].extend([None] * n)
    return DataFrame(data)


def reference_groupby(
    frame: DataFrame,
    keys: List[str],
    agg: Dict[str, Callable[[np.ndarray], Any]],
) -> DataFrame:
    """Hash-per-row-tuple groupby (the pre-vectorization kernel)."""
    for key in keys:
        frame[key]
    groups: Dict[tuple, List[int]] = {}
    for i in range(len(frame)):
        key = tuple(frame[k][i] for k in keys)
        groups.setdefault(key, []).append(i)
    records = []
    for key, idxs in groups.items():
        rec = dict(zip(keys, key))
        for col, reducer in agg.items():
            values = frame[col][idxs]
            rec[col] = reducer(values)
        records.append(rec)
    return DataFrame.from_records(records, columns=keys + list(agg))


def reference_unique(frame: DataFrame, column: str) -> List[Any]:
    seen: Dict[Any, None] = {}
    for v in frame[column]:
        seen.setdefault(v, None)
    return list(seen)


def reference_pivot(
    frame: DataFrame,
    index: str,
    series: str,
    values: str,
    reducer: Optional[Callable[[np.ndarray], Any]] = None,
) -> Tuple[List[Any], Dict[Any, List[Any]]]:
    """Row-loop pivot with the duplicate-cell contract of the kernel."""
    idx_labels = reference_unique(frame, index)
    series_labels = reference_unique(frame, series)
    cells: Dict[tuple, List[int]] = {}
    for i in range(len(frame)):
        cells.setdefault((frame[series][i], frame[index][i]), []).append(i)
    for (s, x), idxs in cells.items():
        if len(idxs) > 1 and reducer is None:
            raise DataFrameError(
                f"pivot: {len(idxs)} rows map to cell (index={x!r}, "
                f"series={s!r}); pass reducer= to aggregate duplicates"
            )
    table: Dict[Any, List[Any]] = {
        s: [None] * len(idx_labels) for s in series_labels
    }
    pos = {label: i for i, label in enumerate(idx_labels)}
    for (s, x), idxs in cells.items():
        if len(idxs) == 1:
            table[s][pos[x]] = frame[values][idxs[0]]
        else:
            table[s][pos[x]] = reducer(frame[values][idxs])
    return idx_labels, table


def reference_filter(
    frame: DataFrame, predicate: Callable[[Dict[str, Any]], bool]
) -> DataFrame:
    """Dict-per-row predicate filtering (the pre-vectorization path)."""
    keep = np.array(
        [bool(predicate(frame.row(i))) for i in range(len(frame))],
        dtype=bool,
    )
    return frame.mask(keep)
