"""Post-processing: assimilate perflogs programmatically (Principle 6).

The paper's framework parses ReFrame perflogs into a pandas DataFrame,
concatenates logs from isolated systems, filters them through a YAML
configuration and renders Bokeh bar charts.  pandas and Bokeh are not
available here, so this subpackage provides the same pipeline on its own
column-store :class:`~repro.postprocess.dataframe.DataFrame`, an SVG/ASCII
chart renderer, and the ``repro-plot`` CLI driven by the same style of
YAML config.
"""

from repro.postprocess.dataframe import DataFrame, DataFrameError
from repro.postprocess.perflog_reader import (
    parse_block,
    read_perflog,
    read_perflogs,
)
from repro.postprocess.store import PerflogStore, StoreStats
from repro.postprocess.filters import apply_filters, FilterError
from repro.postprocess.plotting import (
    bar_chart_ascii,
    bar_chart_svg,
    heatmap_ascii,
    line_chart_svg,
)

__all__ = [
    "DataFrame",
    "DataFrameError",
    "parse_block",
    "read_perflog",
    "read_perflogs",
    "PerflogStore",
    "StoreStats",
    "apply_filters",
    "FilterError",
    "bar_chart_ascii",
    "bar_chart_svg",
    "heatmap_ascii",
    "line_chart_svg",
]
