"""``repro-plot``: perflogs -> filtered table / bar chart, YAML-driven.

Usage::

    repro-plot perflogs/ --config plot.yaml [--svg out.svg] [--csv]
              [--cache-dir .perflog-cache] [--cache-stats] [-j N]

With no config the tool prints the assimilated DataFrame.  The config
drives filtering and the pivot (see :mod:`repro.postprocess.filters`).

``--cache-dir`` persists the incremental ingest manifest
(:mod:`repro.postprocess.store`) between invocations, so the CI loop
that re-plots an ever-growing campaign parses only the bytes appended
since the previous run; ``--cache-stats`` prints the hit/miss accounting
(the analytics twin of the concretization memo's stats) and ``-j N``
fans multi-file reads out over a thread pool.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.postprocess.dataframe import DataFrame
from repro.postprocess.filters import FilterError, apply_filters, load_config
from repro.postprocess.perflog_reader import read_perflogs
from repro.postprocess.plotting import bar_chart_ascii, bar_chart_svg

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plot", description="perflog post-processing and plotting"
    )
    parser.add_argument("perflogs", help="perflog directory or glob")
    parser.add_argument("--config", help="YAML filter/plot configuration")
    parser.add_argument("--svg", help="write an SVG bar chart to this path")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of a table")
    parser.add_argument("--check-regressions", action="store_true",
                        help="CI gate: compare latest runs against the "
                             "perflog history; exit 1 on regression")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative change treated as a regression")
    parser.add_argument("--timeseries", metavar="PERF_VAR",
                        help="render one FOM's history per system as an "
                             "SVG line chart (use with --svg)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persist the incremental ingest manifest "
                             "here; re-runs parse only appended bytes")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print ingest-cache hit/miss accounting "
                             "to stderr")
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="read perflog files on N parallel threads")
    parser.add_argument("--energy", metavar="PROVENANCE.json",
                        help="join per-case energy telemetry from a "
                             "provenance file: adds 'mean_watts' and "
                             "'perf_per_watt' columns (use e.g. "
                             "'value: perf_per_watt' in the plot config "
                             "for FOM-per-watt charts)")
    return parser


def _attach_energy(frame: "DataFrame", provenance_path: str) -> "DataFrame":
    """Join provenance energy onto the perflog frame by case identity.

    Each provenance case entry carries an ``energy`` dict (mean watts,
    joules) captured during the run stage; perflog rows have no power
    column of their own, so efficiency analysis joins the two artifacts
    on ``(test, system:partition, environ)``.  Rows without telemetry
    get NaN -- they simply drop out of numeric aggregation.
    """
    from repro.core.provenance import RunProvenance

    with open(provenance_path, encoding="utf-8") as fh:
        prov = RunProvenance.from_json(fh.read())
    watts: dict = {}
    for entry in prov.entries:
        energy = entry.get("energy")
        if not energy:
            continue
        key = (entry.get("test"), entry.get("platform"),
               entry.get("environ"))
        watts[key] = float(energy.get("mean_watts", 0.0))
    records = frame.to_records()
    col_watts = np.empty(len(records), dtype=float)
    col_per_watt = np.empty(len(records), dtype=float)
    for i, row in enumerate(records):
        platform = f"{row.get('system')}:{row.get('partition')}"
        w = watts.get((row.get("test"), platform, row.get("environ")))
        col_watts[i] = w if w else np.nan
        value = row.get("perf_value")
        try:
            value = float(value)
        except (TypeError, ValueError):
            value = np.nan
        col_per_watt[i] = value / w if w else np.nan
    frame["mean_watts"] = col_watts
    frame["perf_per_watt"] = col_per_watt
    return frame


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    store = None
    if args.cache_dir or args.cache_stats:
        from repro.postprocess.store import PerflogStore

        store = PerflogStore(cache_dir=args.cache_dir)
    try:
        frame = read_perflogs(args.perflogs, store=store, workers=args.jobs)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.energy:
        try:
            frame = _attach_energy(frame, args.energy)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: --energy: {exc}", file=sys.stderr)
            return 1
    if args.cache_stats and store is not None:
        s = store.stats
        print(
            f"ingest cache: {s.hits} hits ({s.full_hits} full, "
            f"{s.partial_hits} partial), {s.misses} misses, "
            f"{s.invalidations} invalidated | "
            f"bytes parsed {s.bytes_parsed}, reused {s.bytes_reused} "
            f"({s.byte_reuse_rate:.1%} reuse)",
            file=sys.stderr,
        )

    if args.check_regressions:
        from repro.core.regression import RegressionTracker

        report = RegressionTracker(threshold=args.threshold).check(frame)
        print(report.render())
        return report.exit_code()

    if args.timeseries:
        from repro.postprocess.plotting import line_chart_svg

        sub = frame.filter_eq("perf_var", args.timeseries)
        if sub.empty:
            print(f"no records for FOM {args.timeseries!r}", file=sys.stderr)
            return 1
        series: dict = {}
        for row in sub.to_records():
            key = f"{row['system']}:{row['partition']}/{row['test']}"
            pts = series.setdefault(key, [])
            pts.append((len(pts) + 1, float(row["perf_value"])))
        for key, pts in series.items():
            values = ", ".join(f"{v:.4g}" for _, v in pts)
            print(f"{key}: {values}")
        if args.svg:
            with open(args.svg, "w", encoding="utf-8") as fh:
                fh.write(line_chart_svg(
                    series, title=f"{args.timeseries} over runs",
                    x_label="run", y_label=args.timeseries,
                ))
            print(f"wrote {args.svg}")
        return 0

    config = {}
    if args.config:
        try:
            with open(args.config, encoding="utf-8") as fh:
                config = load_config(fh.read())
            frame = apply_filters(frame, config)
        except (OSError, FilterError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if frame.empty:
        print("no data after filtering", file=sys.stderr)
        return 1

    if args.csv:
        print(frame.to_csv(), end="")
        return 0

    x = config.get("x")
    series_col = config.get("series")
    value_col = config.get("value", "perf_value")
    if x and series_col:
        # aggregate duplicates (multiple runs) by mean before pivoting
        agg = frame.groupby(
            [x, series_col], {value_col: lambda v: float(np.mean(v.astype(float)))}
        )
        index, series = agg.pivot(x, series_col, value_col)
        title = config.get("title", "")
        unit = frame.unique("perf_unit")[0] if "perf_unit" in frame else ""
        print(bar_chart_ascii(index, series, title=title, unit=str(unit)),
              end="")
        if args.svg:
            with open(args.svg, "w", encoding="utf-8") as fh:
                fh.write(bar_chart_svg(index, series, title=title,
                                       unit=str(unit)))
            print(f"wrote {args.svg}")
    else:
        print(frame.to_string())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
