"""Incremental perflog ingest cache: parse each appended byte once.

Perflogs are **append-only** (Section 2.4): a continuous-benchmarking
campaign grows the same per-``(system, partition, test)`` files run after
run, and the exaCB-style observation is that re-parsing the whole history
on every analytics pass is the scaling bottleneck.  This module keeps a
**content/offset manifest** per perflog --

``(path, size, mtime_ns, line count, head digest, seam digest, offset)``

-- plus the parsed, typed columns.  Re-reading a grown log validates the
cheap invariants (size monotonicity, a sha256 probe over the file head
and over the bytes just before the previously parsed offset) and then
parses **only the appended byte range**, concatenating the new rows onto
the cached columns.  The contract mirrors PR 1's concretization memo:
one full parse per unique ``(file, offset)``, with hit/miss accounting
surfaced through :class:`StoreStats` exactly the way
``ConcretizationCache.stats`` surfaces solver reuse (and recordable in
provenance via :meth:`repro.core.provenance.RunProvenance.attach_ingest_cache`).

Invalidation rules (checked in order, all cheap):

* no manifest entry -> **miss** (full parse);
* file shrank below the parsed offset -> **invalidation** (truncated or
  replaced; full reparse);
* head probe (first ``min(size, 4096)`` bytes) digest mismatch ->
  **invalidation** (file was rewritten in place);
* seam probe (last ``min(offset, 64)`` bytes of the parsed region)
  digest mismatch -> **invalidation** (history edited at the seam);
* same size + same mtime -> **full hit** (no I/O at all);
* otherwise -> **partial hit**: parse ``[offset, size)`` only.

A trailing partial line (a writer mid-append without its final newline)
is held back: the offset only ever advances to the last complete line,
so the next read re-parses the completed line and never splits a record.

With ``cache_dir`` set the manifest (JSON) and columns (``.npz``) are
persisted, so a *separate process* -- e.g. the next ``repro-plot
--cache-dir ...`` invocation in a CI loop -- starts warm.  The store is
thread-safe and shared by the parallel reader
(``read_perflogs(..., store=..., workers=N)``) and by the perflog
writer's manifest hook (:class:`repro.runner.perflog.PerflogHandler`
``store=``), which keeps entries warm *as the campaign writes them*.

Incremental campaigns (``repro-bench --result-store``, DESIGN.md
section 8) compose with this cache for free: a replayed case's perflog
rows are re-emitted through the normal
:meth:`~repro.runner.perflog.PerflogHandler.flush` path as ordinary
appends -- verbatim bytes from the cold run -- so the seam/head probes
see exactly the append-only growth this manifest is built for.  A warm
campaign therefore extends manifests instead of invalidating them,
whether a row was executed or replayed.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.postprocess.perflog_reader import parse_block
from repro.runner.perflog import PERFLOG_FIELDS

__all__ = ["PerflogStore", "StoreStats", "ManifestEntry"]

_MANIFEST_VERSION = 1
_HEADER_TEXT = "|".join(PERFLOG_FIELDS) + "\n"
HEAD_PROBE_BYTES = 4096
SEAM_PROBE_BYTES = 64


def _n_rows(cols: Dict[str, np.ndarray]) -> int:
    return len(next(iter(cols.values()))) if cols else 0


class StoreStats:
    """Hit/miss accounting, shaped like the concretization memo's stats."""

    __slots__ = ("full_hits", "partial_hits", "misses", "invalidations",
                 "appends", "bytes_parsed", "bytes_reused", "rows_parsed",
                 "rows_reused")

    def __init__(self) -> None:
        self.full_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.invalidations = 0
        self.appends = 0
        self.bytes_parsed = 0
        self.bytes_reused = 0
        self.rows_parsed = 0
        self.rows_reused = 0

    @property
    def hits(self) -> int:
        return self.full_hits + self.partial_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the manifest (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    @property
    def byte_reuse_rate(self) -> float:
        total = self.bytes_parsed + self.bytes_reused
        return self.bytes_reused / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "full_hits": self.full_hits,
            "partial_hits": self.partial_hits,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "appends": self.appends,
            "bytes_parsed": self.bytes_parsed,
            "bytes_reused": self.bytes_reused,
            "rows_parsed": self.rows_parsed,
            "rows_reused": self.rows_reused,
            "hit_rate": round(self.hit_rate, 4),
            "byte_reuse_rate": round(self.byte_reuse_rate, 4),
        }

    def publish(self, registry, prefix: str = "ingest") -> None:
        """Fold these counts into a ``MetricsRegistry`` as ``prefix.*``.

        Mirrors ``CacheStats.publish`` (DESIGN.md section 7): integer
        counts become additive counters; the derived rates are skipped
        by ``merge_counts``.
        """
        registry.merge_counts(prefix, self.as_dict())

    def __repr__(self) -> str:
        return (
            f"StoreStats(hits={self.hits} (full={self.full_hits}, "
            f"partial={self.partial_hits}), misses={self.misses}, "
            f"hit_rate={self.hit_rate:.2%}, "
            f"byte_reuse={self.byte_reuse_rate:.2%})"
        )


@dataclass
class ManifestEntry:
    """Everything needed to trust + extend a cached parse of one perflog."""

    path: str
    size: int              # file size at last parse (bytes)
    mtime_ns: int
    offset: int            # bytes parsed through (<= size; line-aligned)
    n_lines: int           # physical lines in the parsed region
    n_rows: int            # data rows parsed (headers/blanks excluded)
    head_len: int          # length of the head probe region
    head_sha: str          # sha256 of bytes [0, head_len)
    seam_len: int          # length of the seam probe region
    seam_sha: str          # sha256 of bytes [offset - seam_len, offset)
    columns: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def meta_dict(self) -> dict:
        return {
            "version": _MANIFEST_VERSION,
            "path": self.path,
            "size": self.size,
            "mtime_ns": self.mtime_ns,
            "offset": self.offset,
            "n_lines": self.n_lines,
            "n_rows": self.n_rows,
            "head_len": self.head_len,
            "head_sha": self.head_sha,
            "seam_len": self.seam_len,
            "seam_sha": self.seam_sha,
        }


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _concat_columns(
    old: Dict[str, np.ndarray], new: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for name in PERFLOG_FIELDS:
        a, b = old[name], new[name]
        if len(a) == 0:
            out[name] = b
        elif len(b) == 0:
            out[name] = a
        else:
            out[name] = np.concatenate([a, b])
    return out


class PerflogStore:
    """Manifest-backed incremental perflog parser (see module docstring).

    Parameters
    ----------
    cache_dir:
        Optional directory for cross-process persistence.  Each perflog
        gets ``<sha256(abspath)>.json`` (manifest) + ``.npz`` (columns).
    head_probe / seam_probe:
        Sizes of the rewrite-detection digests (bytes).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        head_probe: int = HEAD_PROBE_BYTES,
        seam_probe: int = SEAM_PROBE_BYTES,
    ):
        self.cache_dir = cache_dir
        self.head_probe = head_probe
        self.seam_probe = seam_probe
        self.stats = StoreStats()
        self._table: Dict[str, ManifestEntry] = {}
        self._lock = threading.RLock()
        #: optional FaultyIO shim the persisted-cache writes go through
        self._io = None
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def attach_io(self, io, label: str = "ingest") -> None:
        """Route on-disk manifest writes through a :class:`FaultyIO` shim."""
        self._io = io
        self._io_label = label

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return self._key(path) in self._table

    @staticmethod
    def _key(path: str) -> str:
        return os.path.abspath(path)

    # -- public API ------------------------------------------------------------------
    def read(self, path: str) -> Dict[str, np.ndarray]:
        """Columns for ``path``, parsing only bytes not yet in the manifest.

        Returns copies of the cached arrays so callers can never mutate
        the store through a returned DataFrame.
        """
        key = self._key(path)
        st = os.stat(path)
        with self._lock:
            entry = self._table.get(key)
            if entry is None and self.cache_dir:
                entry = self._load_persisted(key)
            if entry is not None:
                result = self._read_with_entry(key, entry, st, path)
                if result is not None:
                    return result
                self.stats.invalidations += 1
                self._table.pop(key, None)
            # cold (or invalidated): one full parse for this (file, offset)
            self.stats.misses += 1
            entry = self._full_parse(key, st, path)
            return {k: v.copy() for k, v in entry.columns.items()}

    def invalidate(self, path: str) -> None:
        with self._lock:
            self._table.pop(self._key(path), None)

    def note_append(self, path: str, lines: List[str],
                    wrote_header: bool) -> None:
        """Writer-side manifest hook (see ``PerflogHandler(store=...)``).

        Called *after* ``lines`` (complete records, no newlines) were
        appended to ``path``; keeps the manifest warm without re-reading
        the bytes that were just written.  Any mismatch between the
        manifest and the observed file (another writer, a partial write)
        simply drops the entry -- the next read cold-parses.
        """
        block = "\n".join(lines) + "\n"
        appended = (_HEADER_TEXT + block) if wrote_header else block
        appended_bytes = appended.encode("utf-8")
        key = self._key(path)
        st = os.stat(path)
        with self._lock:
            entry = self._table.get(key)
            if entry is None and not wrote_header:
                return  # cold file: nothing to extend
            pre_size = st.st_size - len(appended_bytes)
            if entry is not None:
                if entry.offset != pre_size:
                    # out of sync (external writer): drop, reparse later
                    self._table.pop(key, None)
                    return
                base_lineno = entry.n_lines + 1
                cols, n_phys = parse_block(appended, path, base_lineno)
                new_rows = _n_rows(cols)
                entry.columns = _concat_columns(entry.columns, cols)
                entry.n_lines += n_phys
                entry.n_rows += new_rows
                entry.offset = st.st_size
                entry.size = st.st_size
                entry.mtime_ns = st.st_mtime_ns
                self._reseam(entry, appended_bytes)
            else:
                # brand-new file this handler just created
                if pre_size != 0:
                    return
                cols, n_phys = parse_block(appended, path, 1)
                head_len = min(len(appended_bytes), self.head_probe)
                seam_len = min(len(appended_bytes), self.seam_probe)
                entry = ManifestEntry(
                    path=key,
                    size=st.st_size,
                    mtime_ns=st.st_mtime_ns,
                    offset=st.st_size,
                    n_lines=n_phys,
                    n_rows=_n_rows(cols),
                    head_len=head_len,
                    head_sha=_sha(appended_bytes[:head_len]),
                    seam_len=seam_len,
                    seam_sha=_sha(appended_bytes[-seam_len:]),
                    columns=cols,
                )
                self._table[key] = entry
            self.stats.appends += 1
            self._persist(key, entry)

    # -- internals -------------------------------------------------------------------
    def _read_with_entry(
        self, key: str, entry: ManifestEntry, st: os.stat_result, path: str
    ) -> Optional[Dict[str, np.ndarray]]:
        """Serve from the manifest, or ``None`` to signal invalidation."""
        if st.st_size < entry.offset:
            return None  # truncated/replaced with something shorter
        if st.st_size == entry.size and st.st_mtime_ns == entry.mtime_ns:
            self.stats.full_hits += 1
            self.stats.bytes_reused += entry.offset
            self.stats.rows_reused += entry.n_rows
            return {k: v.copy() for k, v in entry.columns.items()}
        with open(path, "rb") as fh:
            head = fh.read(entry.head_len)
            if len(head) != entry.head_len or _sha(head) != entry.head_sha:
                return None
            if entry.seam_len:
                fh.seek(entry.offset - entry.seam_len)
                seam = fh.read(entry.seam_len)
                if _sha(seam) != entry.seam_sha:
                    return None
            fh.seek(entry.offset)
            tail = fh.read()
        # hold back a trailing partial line (no final newline yet)
        cut = tail.rfind(b"\n") + 1
        tail = tail[:cut]
        if not tail:
            # nothing newly completed: a metadata-only change (touch)
            self.stats.full_hits += 1
            self.stats.bytes_reused += entry.offset
            self.stats.rows_reused += entry.n_rows
            entry.size = st.st_size
            entry.mtime_ns = st.st_mtime_ns
            return {k: v.copy() for k, v in entry.columns.items()}
        cols, n_phys = parse_block(
            tail.decode("utf-8"), path, entry.n_lines + 1
        )
        new_rows = _n_rows(cols)
        self.stats.partial_hits += 1
        self.stats.bytes_reused += entry.offset
        self.stats.bytes_parsed += len(tail)
        self.stats.rows_reused += entry.n_rows
        self.stats.rows_parsed += new_rows
        entry.columns = _concat_columns(entry.columns, cols)
        entry.n_lines += n_phys
        entry.n_rows += new_rows
        entry.offset += len(tail)
        entry.size = st.st_size
        entry.mtime_ns = st.st_mtime_ns
        self._reseam(entry, tail)
        self._persist(key, entry)
        return {k: v.copy() for k, v in entry.columns.items()}

    def _full_parse(
        self, key: str, st: os.stat_result, path: str
    ) -> ManifestEntry:
        with open(path, "rb") as fh:
            data = fh.read()
        cut = data.rfind(b"\n") + 1
        parsed = data[:cut]
        cols, n_phys = parse_block(parsed.decode("utf-8"), path, 1)
        self.stats.bytes_parsed += len(parsed)
        self.stats.rows_parsed += _n_rows(cols)
        head_len = min(len(parsed), self.head_probe)
        seam_len = min(len(parsed), self.seam_probe)
        entry = ManifestEntry(
            path=key,
            size=st.st_size,
            mtime_ns=st.st_mtime_ns,
            offset=len(parsed),
            n_lines=n_phys,
            n_rows=_n_rows(cols),
            head_len=head_len,
            head_sha=_sha(parsed[:head_len]),
            seam_len=seam_len,
            seam_sha=_sha(parsed[len(parsed) - seam_len:]),
            columns=cols,
        )
        self._table[key] = entry
        self._persist(key, entry)
        return entry

    def _reseam(self, entry: ManifestEntry, appended: bytes) -> None:
        """Refresh the seam probe after the parsed region grew."""
        if len(appended) >= self.seam_probe:
            entry.seam_len = self.seam_probe
            entry.seam_sha = _sha(appended[-self.seam_probe:])
        else:
            # seam spans the append boundary: re-read from disk
            entry.seam_len = min(entry.offset, self.seam_probe)
            with open(entry.path, "rb") as fh:
                fh.seek(entry.offset - entry.seam_len)
                entry.seam_sha = _sha(fh.read(entry.seam_len))

    # -- persistence -----------------------------------------------------------------
    def _cache_paths(self, key: str) -> "tuple[str, str]":
        stem = hashlib.sha256(key.encode()).hexdigest()[:32]
        base = os.path.join(self.cache_dir, stem)
        return base + ".json", base + ".npz"

    def _persist(self, key: str, entry: ManifestEntry) -> None:
        if not self.cache_dir:
            return
        meta_path, cols_path = self._cache_paths(key)
        if self._io is not None:
            buf = io.BytesIO()
            np.savez(buf, **entry.columns)
            label = getattr(self, "_io_label", "ingest")
            self._io.write_atomic(cols_path, buf.getvalue(), label,
                                  sync=False)
            meta = json.dumps(entry.meta_dict(), indent=1, sort_keys=True)
            self._io.write_atomic(meta_path, meta.encode("utf-8"), label,
                                  sync=False)
            return
        tmp = cols_path + ".tmp"
        with open(tmp, "wb") as fh:
            np.savez(fh, **entry.columns)
        os.replace(tmp, cols_path)
        tmp = meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry.meta_dict(), fh, indent=1, sort_keys=True)
        os.replace(tmp, meta_path)

    def _load_persisted(self, key: str) -> Optional[ManifestEntry]:
        meta_path, cols_path = self._cache_paths(key)
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
            if meta.get("version") != _MANIFEST_VERSION:
                return None
            with np.load(cols_path, allow_pickle=True) as npz:
                columns = {name: npz[name] for name in PERFLOG_FIELDS}
        except Exception:
            # a corrupt / truncated / foreign cache file is never fatal:
            # fall back to a cold parse (np.load raises zipfile / pickle
            # errors beyond the obvious OSError/ValueError set)
            return None
        entry = ManifestEntry(
            path=meta["path"],
            size=meta["size"],
            mtime_ns=meta["mtime_ns"],
            offset=meta["offset"],
            n_lines=meta["n_lines"],
            n_rows=meta["n_rows"],
            head_len=meta["head_len"],
            head_sha=meta["head_sha"],
            seam_len=meta["seam_len"],
            seam_sha=meta["seam_sha"],
            columns=columns,
        )
        self._table[key] = entry
        return entry
