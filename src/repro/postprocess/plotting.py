"""Chart rendering: grouped bar charts as ASCII (terminal) and SVG (files).

The paper's proof-of-concept uses Bokeh; unavailable here, so the same
"multiple data series bar chart" is rendered natively.  ``None`` values
(combinations that did not run -- Figure 2's white ``*`` boxes) are drawn
as an asterisk/empty slot rather than silently dropped, preserving the
paper's explicit-failure convention.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["bar_chart_ascii", "bar_chart_svg", "heatmap_ascii",
           "line_chart_svg"]


def _absent(v: Any) -> bool:
    """``None`` *or* NaN marks an absent cell -- the vectorized pivot
    kernels hand float columns through, where missing data is NaN."""
    if v is None:
        return True
    try:
        return math.isnan(v)
    except TypeError:
        return False

_SVG_COLOURS = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
)


def bar_chart_ascii(
    index: Sequence[Any],
    series: Dict[Any, List[Optional[float]]],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Grouped horizontal bar chart in plain text."""
    values = [
        v for vals in series.values() for v in vals if not _absent(v)
    ]
    vmax = max(values) if values else 1.0
    label_w = max(
        [len(str(i)) for i in index] + [len(str(s)) for s in series] + [4]
    )
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    for i, idx_label in enumerate(index):
        lines.append(f"{idx_label}:")
        for s_label, vals in series.items():
            v = vals[i]
            if _absent(v):
                lines.append(f"  {str(s_label):<{label_w}} *")
                continue
            bar = "#" * max(int(round(v / vmax * width)), 1 if v > 0 else 0)
            lines.append(
                f"  {str(s_label):<{label_w}} {bar} {v:.4g}{unit and ' ' + unit}"
            )
    return "\n".join(lines) + "\n"


def heatmap_ascii(
    rows: Sequence[Any],
    cols: Sequence[Any],
    cells: Dict[Any, Dict[Any, Optional[float]]],
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """A Figure 2-style matrix: rows x columns of values, '*' for absent."""
    col_w = max([len(str(c)) for c in cols] + [6]) + 1
    row_w = max(len(str(r)) for r in rows) + 1
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    lines.append(" " * row_w + "".join(str(c).rjust(col_w) for c in cols))
    for r in rows:
        cells_r = cells.get(r, {})
        line = str(r).ljust(row_w)
        for c in cols:
            v = cells_r.get(c)
            line += ("*" if _absent(v) else fmt.format(v)).rjust(col_w)
        lines.append(line)
    return "\n".join(lines) + "\n"


def line_chart_svg(
    series: Dict[Any, List[tuple]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 720,
    height: int = 420,
    log_x: bool = False,
) -> str:
    """Multi-series line chart (scaling curves, time-series regression).

    ``series`` maps a label to ``[(x, y), ...]`` points; ``log_x=True``
    spaces task counts logarithmically, the conventional scaling-plot
    axis.
    """
    import math

    pts_all = [(x, y) for pts in series.values() for x, y in pts]
    if not pts_all:
        return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
                f'height="{height}"/>')
    xt = (lambda v: math.log2(v)) if log_x else (lambda v: float(v))
    xs = [xt(x) for x, _ in pts_all]
    ys = [y for _, y in pts_all]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    m_left, m_right, m_top, m_bot = 60, 20, 36, 44

    def px(x):
        return m_left + (xt(x) - x_lo) / x_span * (width - m_left - m_right)

    def py(y):
        return height - m_bot - (y - y_lo) / y_span * (height - m_top - m_bot)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{width // 2}" y="18" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{title}</text>',
        f'<rect x="{m_left}" y="{m_top}" width="{width - m_left - m_right}" '
        f'height="{height - m_top - m_bot}" fill="none" stroke="#888"/>',
        f'<text x="{width // 2}" y="{height - 8}" '
        f'text-anchor="middle">{x_label}</text>',
        f'<text x="14" y="{height // 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height // 2})">{y_label}</text>',
    ]
    for k, (label, pts) in enumerate(series.items()):
        colour = _SVG_COLOURS[k % len(_SVG_COLOURS)]
        pts = sorted(pts)
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{px(x):.1f},{py(y):.1f}"
            for i, (x, y) in enumerate(pts)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                f'fill="{colour}"/>'
            )
        parts.append(
            f'<text x="{width - m_right - 4}" y="{m_top + 16 + 16 * k}" '
            f'text-anchor="end" fill="{colour}">{label}</text>'
        )
    # axis extremes
    parts.append(
        f'<text x="{m_left}" y="{height - m_bot + 14}">'
        f"{min(x for x, _ in pts_all):g}</text>"
    )
    parts.append(
        f'<text x="{width - m_right}" y="{height - m_bot + 14}" '
        f'text-anchor="end">{max(x for x, _ in pts_all):g}</text>'
    )
    parts.append(
        f'<text x="{m_left - 6}" y="{py(y_hi) + 4}" text-anchor="end">'
        f"{y_hi:.3g}</text>"
    )
    parts.append(
        f'<text x="{m_left - 6}" y="{py(y_lo) + 4}" text-anchor="end">'
        f"{y_lo:.3g}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart_svg(
    index: Sequence[Any],
    series: Dict[Any, List[Optional[float]]],
    title: str = "",
    unit: str = "",
    width: int = 800,
    bar_height: int = 16,
) -> str:
    """Grouped horizontal bar chart as a standalone SVG document."""
    values = [v for vals in series.values() for v in vals if not _absent(v)]
    vmax = max(values) if values else 1.0
    n_series = max(len(series), 1)
    group_h = bar_height * n_series + 14
    chart_x = 170
    chart_w = width - chart_x - 90
    height = 40 + len(index) * group_h + 24 + 18 * n_series

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<text x="{width // 2}" y="20" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{title}</text>',
    ]
    y = 40
    for i, idx_label in enumerate(index):
        parts.append(
            f'<text x="{chart_x - 8}" y="{y + group_h // 2}" '
            f'text-anchor="end">{idx_label}</text>'
        )
        for k, (s_label, vals) in enumerate(series.items()):
            v = vals[i]
            by = y + k * bar_height
            colour = _SVG_COLOURS[k % len(_SVG_COLOURS)]
            if _absent(v):
                parts.append(
                    f'<text x="{chart_x + 4}" y="{by + bar_height - 4}" '
                    f'fill="#999">*</text>'
                )
                continue
            w = max(v / vmax * chart_w, 1)
            parts.append(
                f'<rect x="{chart_x}" y="{by}" width="{w:.1f}" '
                f'height="{bar_height - 2}" fill="{colour}"/>'
            )
            parts.append(
                f'<text x="{chart_x + w + 4:.1f}" y="{by + bar_height - 4}">'
                f"{v:.4g}{unit and ' ' + unit}</text>"
            )
        y += group_h
    # legend
    for k, s_label in enumerate(series):
        ly = y + 12 + k * 18
        colour = _SVG_COLOURS[k % len(_SVG_COLOURS)]
        parts.append(
            f'<rect x="{chart_x}" y="{ly - 10}" width="12" height="12" '
            f'fill="{colour}"/>'
        )
        parts.append(f'<text x="{chart_x + 18}" y="{ly}">{s_label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
