"""Read perflogs into DataFrames -- block-wise and vectorized.

"If more than one perflog is used for plotting, DataFrames from individual
perflogs are concatenated together into one DataFrame -- this feature is
crucial for cross-platform data assimilation in a predictable manner where
perflogs are generated on isolated systems." (Section 2.4)

Ingest is **columnar from the first byte**: :func:`parse_block` splits a
whole file (or an appended byte range) into a flat field vector with one
C-level ``str.split``, reshapes it to ``rows x fields``, and types the
numeric columns as float64 -- no per-line dict is ever built.  Clean
files (the writer's own output) never leave the fast path; padded
headers, stray blank lines or malformed rows fall back to a strict
per-line scan that reproduces the historical diagnostics exactly.  The
pre-vectorization row-at-a-time reader is retained in
:mod:`repro.postprocess.reference` as the executable specification and
perf baseline.

:func:`read_perflogs` optionally fans multi-file reads out over a thread
pool (``workers=``) and routes every read through a
:class:`~repro.postprocess.store.PerflogStore` (``store=``) so re-reading
a grown append-only campaign log parses only the appended bytes.
"""

from __future__ import annotations

import glob
import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.postprocess.dataframe import DataFrame
from repro.runner.perflog import PERFLOG_FIELDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.postprocess.store import PerflogStore

__all__ = ["read_perflog", "read_perflogs", "parse_block",
           "PerflogFormatError"]


class PerflogFormatError(ValueError):
    """A perflog line does not match the expected schema."""


_NUMERIC = ("num_tasks", "perf_value")
_HEADER_LINE = "|".join(PERFLOG_FIELDS)
_HEADER_TEXT = _HEADER_LINE + "\n"
_N_FIELDS = len(PERFLOG_FIELDS)


def _empty_columns() -> Dict[str, np.ndarray]:
    # NB: matches the historical ``from_records([], columns=...)`` dtype
    # (empty float64) so store/direct/legacy paths stay bit-identical
    return {name: np.asarray([]) for name in PERFLOG_FIELDS}


def _columns_from_table(
    table: np.ndarray,
    path: str,
    linenos: "np.ndarray",
) -> Dict[str, np.ndarray]:
    """rows x fields object table -> typed column dict."""
    cols: Dict[str, np.ndarray] = {}
    for k, name in enumerate(PERFLOG_FIELDS):
        col = table[:, k]
        if name in _NUMERIC:
            try:
                cols[name] = col.astype(np.float64)
            except (ValueError, TypeError):
                for i, raw in enumerate(col.tolist()):
                    try:
                        float(raw)
                    except ValueError as exc:
                        raise PerflogFormatError(
                            f"{path}:{int(linenos[i])}: field "
                            f"{name}={raw!r} is not numeric"
                        ) from exc
                raise  # pragma: no cover - astype failed, scan did not
        else:
            cols[name] = col.copy()
    return cols


def _parse_block_slow(
    lines: List[str], path: str, base_lineno: int
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Strict per-line scan for files with padded headers / blanks /
    malformed rows; reproduces the historical diagnostics exactly."""
    kept: List[str] = []
    linenos: List[int] = []
    for offset, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped == _HEADER_LINE:
            continue
        if len(line.split("|")) != _N_FIELDS:
            raise PerflogFormatError(
                f"{path}:{base_lineno + offset}: expected {_N_FIELDS} "
                f"fields, got {len(line.split('|'))}"
            )
        kept.append(line)
        linenos.append(base_lineno + offset)
    if not kept:
        return _empty_columns(), np.empty(0, dtype=np.int64)
    table = np.array("|".join(kept).split("|"), dtype=object)
    table = table.reshape(len(kept), _N_FIELDS)
    return (
        _columns_from_table(table, path, np.asarray(linenos)),
        np.asarray(linenos),
    )


def _columns_from_flat(flat: List[str]) -> Dict[str, np.ndarray]:
    """Flat field list -> typed columns via stride slicing.

    Raises a bare :class:`PerflogFormatError` on any numeric-conversion
    failure; the caller re-parses on the general path, which localizes
    the offending line and reproduces the historical diagnostics.
    """
    cols: Dict[str, np.ndarray] = {}
    for k, name in enumerate(PERFLOG_FIELDS):
        sl = flat[k::_N_FIELDS]
        if name in _NUMERIC:
            try:
                cols[name] = np.array(sl, dtype=np.float64)
            except (ValueError, TypeError) as exc:
                raise PerflogFormatError(str(exc)) from exc
        else:
            cols[name] = np.array(sl, dtype=object)
    return cols


def parse_block(
    text: str, path: str, base_lineno: int = 1
) -> Tuple[Dict[str, np.ndarray], int]:
    """Vectorized parse of one perflog byte range -> typed columns.

    Returns ``(columns, n_physical_lines)``; ``base_lineno`` is the
    1-based file line number of the first line in ``text`` (so error
    messages from incremental re-ingestion point at the real file line).
    Header lines anywhere in the block are append-coalescing boundaries
    and are skipped.

    Clean blocks -- newline-terminated, no blank lines, no ``\\r``, at
    most one leading header (the writer's own output) -- take a
    *zero-line-array* fast path: the whole block becomes one flat field
    vector with a single C-level ``str.split`` and columns are strided
    slices of it.  Anything irregular falls through to the general path
    below, and from there to the strict per-line scan.
    """
    if (text.endswith("\n") and not text.startswith("\n")
            and "\n\n" not in text and "\r" not in text):
        n_phys = text.count("\n")
        body = text
        if body.startswith(_HEADER_TEXT):
            body = body[len(_HEADER_TEXT):]
        if not body:
            return _empty_columns(), n_phys
        if not (body.startswith(_HEADER_TEXT)
                or ("\n" + _HEADER_TEXT) in body):
            n_rows = body.count("\n")
            flat = body[:-1].replace("\n", "|").split("|")
            if len(flat) == _N_FIELDS * n_rows:
                try:
                    return _columns_from_flat(flat), n_phys
                except PerflogFormatError:
                    pass  # general path localizes the bad line/header
    lines = text.splitlines()
    n_phys = len(lines)
    if not lines:
        return _empty_columns(), 0
    if base_lineno == 1:
        first = lines[0].strip()
        if first.startswith("timestamp|") and first != _HEADER_LINE:
            raise PerflogFormatError(
                f"{path}: unexpected header {tuple(first.split('|'))}"
            )
    arr = np.array(lines, dtype=object)
    keep = (arr != _HEADER_LINE) & (arr != "")
    kept = arr[keep].tolist()
    if not kept:
        return _empty_columns(), n_phys
    flat = "|".join(kept).split("|")
    if len(flat) != _N_FIELDS * len(kept):
        # whitespace-padded headers, space-only lines or malformed rows:
        # take the strict per-line path for exact diagnostics
        cols, _ = _parse_block_slow(lines, path, base_lineno)
        return cols, n_phys
    table = np.array(flat, dtype=object).reshape(len(kept), _N_FIELDS)
    # line numbers are only materialized lazily, on a conversion error
    linenos = _LazyLinenos(keep, base_lineno)
    try:
        cols = _columns_from_table(table, path, linenos)
    except PerflogFormatError:
        # a whitespace-padded header can masquerade as a 12-field data
        # row; the strict scan strips and skips it -- or re-raises the
        # same diagnostic if the row is genuinely malformed
        cols, _ = _parse_block_slow(lines, path, base_lineno)
    return cols, n_phys


class _LazyLinenos:
    """Defers the keep-mask -> line-number conversion to the error path."""

    __slots__ = ("_keep", "_base", "_resolved")

    def __init__(self, keep: np.ndarray, base: int):
        self._keep = keep
        self._base = base
        self._resolved: Optional[np.ndarray] = None

    def __getitem__(self, i: int) -> int:
        if self._resolved is None:
            self._resolved = np.flatnonzero(self._keep) + self._base
        return int(self._resolved[i])


def _frame_from_columns(cols: Dict[str, np.ndarray], path: str) -> DataFrame:
    frame = DataFrame._from_columns(
        {name: cols[name] for name in PERFLOG_FIELDS}
    )
    n = len(frame)
    if n:
        frame["perflog_path"] = np.full(n, path, dtype=object)
    else:
        frame["perflog_path"] = np.asarray([])  # historical empty dtype
    return frame


def read_perflog(path: str, store: "Optional[PerflogStore]" = None) -> DataFrame:
    """One perflog file -> DataFrame (header line is validated).

    Appended/concatenated logs are **coalesced**: perflogs are append-only
    and isolated systems often assemble campaign logs by concatenating
    per-run files (``cat run1.log run2.log``), which leaves duplicate
    header lines mid-file.  Any line matching the canonical header is
    treated as a segment boundary and skipped, so a coalesced log reads
    exactly like one continuous perflog.  The whole file is parsed
    block-wise (see :func:`parse_block`); with ``store=`` given, the
    parse is served from / recorded in the incremental ingest cache and
    only bytes appended since the last read are parsed.
    """
    if store is not None:
        cols = store.read(path)
    else:
        with open(path, "rb") as fh:
            text = fh.read().decode("utf-8")
        cols, _ = parse_block(text, path, 1)
    return _frame_from_columns(cols, path)


def read_perflogs(
    prefix_or_glob: str,
    store: "Optional[PerflogStore]" = None,
    workers: Optional[int] = None,
) -> DataFrame:
    """All perflogs under a directory (or matching a glob), concatenated.

    ``workers > 1`` reads files on a thread pool (order-preserving, so
    the concatenated frame is byte-identical to the serial read);
    ``store`` threads every read through the incremental ingest cache.
    """
    if os.path.isdir(prefix_or_glob):
        paths = sorted(
            glob.glob(os.path.join(prefix_or_glob, "**", "*.log"),
                      recursive=True)
        )
    else:
        paths = sorted(glob.glob(prefix_or_glob))
    if not paths:
        raise FileNotFoundError(f"no perflogs under {prefix_or_glob!r}")
    if workers and workers > 1 and len(paths) > 1:
        with ThreadPoolExecutor(
            max_workers=min(workers, len(paths))
        ) as pool:
            frames = list(pool.map(lambda p: read_perflog(p, store=store),
                                   paths))
    else:
        frames = [read_perflog(p, store=store) for p in paths]
    return DataFrame.concat(frames)
