"""Read perflogs into DataFrames.

"If more than one perflog is used for plotting, DataFrames from individual
perflogs are concatenated together into one DataFrame -- this feature is
crucial for cross-platform data assimilation in a predictable manner where
perflogs are generated on isolated systems." (Section 2.4)
"""

from __future__ import annotations

import glob
import os
from typing import List

from repro.postprocess.dataframe import DataFrame
from repro.runner.perflog import PERFLOG_FIELDS

__all__ = ["read_perflog", "read_perflogs", "PerflogFormatError"]


class PerflogFormatError(ValueError):
    """A perflog line does not match the expected schema."""


_NUMERIC = {"perf_value", "num_tasks"}


def _parse_line(line: str, path: str, lineno: int) -> dict:
    parts = line.rstrip("\n").split("|")
    if len(parts) != len(PERFLOG_FIELDS):
        raise PerflogFormatError(
            f"{path}:{lineno}: expected {len(PERFLOG_FIELDS)} fields, "
            f"got {len(parts)}"
        )
    rec = dict(zip(PERFLOG_FIELDS, parts))
    for key in _NUMERIC:
        try:
            rec[key] = float(rec[key])
        except ValueError as exc:
            raise PerflogFormatError(
                f"{path}:{lineno}: field {key}={rec[key]!r} is not numeric"
            ) from exc
    return rec


def read_perflog(path: str) -> DataFrame:
    """One perflog file -> DataFrame (header line is validated).

    Appended/concatenated logs are **coalesced**: perflogs are append-only
    and isolated systems often assemble campaign logs by concatenating
    per-run files (``cat run1.log run2.log``), which leaves duplicate
    header lines mid-file.  Any line matching the canonical header is
    treated as a segment boundary and skipped, so a coalesced log reads
    exactly like one continuous perflog.  The whole file is read in one
    buffered gulp rather than line-at-a-time.
    """
    header_line = "|".join(PERFLOG_FIELDS)
    records = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped == header_line:
            continue  # initial header or an append-coalescing boundary
        if lineno == 1 and stripped.startswith("timestamp|"):
            raise PerflogFormatError(
                f"{path}: unexpected header {tuple(stripped.split('|'))}"
            )
        records.append(_parse_line(line, path, lineno))
    frame = DataFrame.from_records(records, columns=list(PERFLOG_FIELDS))
    frame["perflog_path"] = [path] * len(frame)
    return frame


def read_perflogs(prefix_or_glob: str) -> DataFrame:
    """All perflogs under a directory (or matching a glob), concatenated."""
    if os.path.isdir(prefix_or_glob):
        paths = sorted(
            glob.glob(os.path.join(prefix_or_glob, "**", "*.log"),
                      recursive=True)
        )
    else:
        paths = sorted(glob.glob(prefix_or_glob))
    if not paths:
        raise FileNotFoundError(f"no perflogs under {prefix_or_glob!r}")
    return DataFrame.concat([read_perflog(p) for p in paths])
