"""YAML-config-driven filtering of assimilated perflog data.

The paper: "The post-processing scripts also provide a unified way to
filter the perflog and pass selected data to sample plotting scripts, all
controlled via a YAML configuration file."

Config schema (all keys optional)::

    filters:
      - column: system
        in: [archer2, csd3]
      - column: perf_var
        equals: Triad
      - column: perf_value
        min: 10.0
        max: 1000.0
      - column: test
        contains: BabelStream
    series: model        # pivot series column
    x: system            # pivot index column
    value: perf_value    # pivot value column
    title: "Triad bandwidth"
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np
import yaml

from repro.postprocess.dataframe import DataFrame

__all__ = ["FilterError", "apply_filters", "load_config"]


class FilterError(ValueError):
    """Malformed filter configuration."""


def load_config(text: str) -> Dict[str, Any]:
    try:
        doc = yaml.safe_load(text) or {}
    except yaml.YAMLError as exc:
        raise FilterError(f"bad YAML config: {exc}") from exc
    if not isinstance(doc, dict):
        raise FilterError("config must be a mapping")
    return doc


def apply_filters(frame: DataFrame, config: Dict[str, Any]) -> DataFrame:
    """Apply the ``filters`` section of a config to a DataFrame."""
    out = frame
    for i, rule in enumerate(config.get("filters", [])):
        if not isinstance(rule, dict) or "column" not in rule:
            raise FilterError(f"filter #{i}: needs a 'column' key: {rule!r}")
        column = rule["column"]
        if column not in out:
            raise FilterError(
                f"filter #{i}: no column {column!r} in data "
                f"(have {', '.join(out.columns)})"
            )
        if "equals" in rule:
            out = out.filter_eq(column, rule["equals"])
        if "in" in rule:
            values = rule["in"]
            if not isinstance(values, list):
                raise FilterError(f"filter #{i}: 'in' needs a list")
            out = out.filter_in(column, values)
        if "contains" in rule:
            needle = str(rule["contains"])
            col = out[column]
            keep = np.fromiter(
                (needle in str(v) for v in col.tolist()),
                dtype=bool, count=len(col),
            )
            out = out.mask(keep)
        if "min" in rule:
            out = out.mask(
                np.asarray(out[column], dtype=float) >= float(rule["min"])
            )
        if "max" in rule:
            out = out.mask(
                np.asarray(out[column], dtype=float) <= float(rule["max"])
            )
    return out
