"""A minimal column-store DataFrame (the pandas subset the pipeline needs).

Columns are numpy arrays (object dtype for strings), rows are implicit.
Supported operations mirror what the paper's post-processing scripts do
with pandas: construction from records, selection, boolean-mask
filtering, concatenation (the "crucial" cross-platform assimilation
step), group-by aggregation, sorting, pivoting for chart series, and CSV
round-tripping.

The compute kernels are **vectorized**: ``groupby`` factorizes its key
columns and finds group boundaries with one stable ``np.argsort`` instead
of hashing per-row tuples, ``concat`` is a zero-copy ``np.concatenate``
per column, ``pivot`` scatters values through integer cell codes, and
``filter``/``with_column`` evaluate their callables against a reusable
row *view* instead of materializing one dict per row.  A pure-Python
reference implementation of every kernel is retained in
:mod:`repro.postprocess.reference`; property tests assert the two paths
are result-identical (the reference is the executable specification).

Floating-point bit-identity note: group reductions are applied to
*contiguous slices* of the stably-sorted value column, which contain the
group's values in original row order -- so ``np.mean``/``np.sum`` see
exactly the operand sequence the reference path sees and produce
bit-identical results (``np.add.reduceat`` would not: it skips numpy's
pairwise summation).  Order-insensitive reducers (``np.min``/``np.max``/
``len``) use exact vectorized ``reduceat``/count fast paths.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DataFrame", "DataFrameError"]


class DataFrameError(ValueError):
    """Schema violations: unknown columns, ragged data, bad merges."""


def _factorize(arr: np.ndarray) -> Tuple[np.ndarray, List[Any]]:
    """``arr -> (codes, labels)`` with labels in first-appearance order.

    Numeric/bool columns go through sort-based ``np.unique``; object
    columns use a hash-based scan -- faster than sorting python objects
    *and* it keeps the historical dict semantics (hash/eq identity, no
    ordering required), which also covers unorderable mixes like
    str vs None.
    """
    n = len(arr)
    if n == 0:
        return np.empty(0, dtype=np.int64), []
    if arr.dtype.kind == "O":
        codes = np.empty(n, dtype=np.int64)
        table: Dict[Any, int] = {}
        labels: List[Any] = []
        for i, v in enumerate(arr.tolist()):
            code = table.get(v)
            if code is None:
                code = table[v] = len(labels)
                labels.append(v)
            codes[i] = code
        return codes, labels
    uniq, first, inv = np.unique(arr, return_index=True,
                                 return_inverse=True)
    # remap sorted-unique codes to first-appearance order
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    codes = rank[inv.reshape(-1)]
    return codes, list(uniq[order])


class _RowView(Mapping):
    """Read-only dict-like proxy for one row; reused across the scan.

    Handed to ``filter``/``with_column`` callables so predicates keep
    their ``row["column"]`` shape without a per-row dict allocation.
    """

    __slots__ = ("_cols", "_i")

    def __init__(self, cols: Dict[str, np.ndarray]):
        self._cols = cols
        self._i = 0

    def __getitem__(self, key: str) -> Any:
        try:
            col = self._cols[key]
        except KeyError:
            raise KeyError(key) from None
        return col[self._i]

    def __iter__(self):
        return iter(self._cols)

    def __len__(self) -> int:
        return len(self._cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr({k: c[self._i] for k, c in self._cols.items()})


#: reducers with exact (order-insensitive) vectorized fast paths
_EXACT_FAST_REDUCERS = {id(np.min): "min", id(np.max): "max",
                        id(np.amin): "min", id(np.amax): "max",
                        id(len): "count", id(np.size): "count"}

_CSV_DTYPE_TAGS = {"f": "float", "i": "int", "u": "int", "b": "bool"}
_CSV_TAG_SET = ("float", "int", "str", "bool")


def _csv_encode_str(v: Any) -> str:
    r"""Lossless cell text for object columns: ``None`` -> ``\N``,
    strings beginning with a backslash gain one escape backslash."""
    if v is None:
        return "\\N"
    s = str(v)
    if s.startswith("\\"):
        return "\\" + s
    return s


def _csv_decode_str(s: str) -> Any:
    if s == "\\N":
        return None
    if s.startswith("\\"):
        return s[1:]
    return s


class DataFrame:
    """An ordered mapping column-name -> numpy array, all equal length."""

    def __init__(self, data: Optional[Dict[str, Sequence[Any]]] = None):
        self._cols: Dict[str, np.ndarray] = {}
        if data:
            lengths = {len(v) for v in data.values()}
            if len(lengths) > 1:
                raise DataFrameError(f"ragged columns: lengths {sorted(lengths)}")
            for name, values in data.items():
                self._cols[name] = self._as_array(values)

    @staticmethod
    def _as_array(values: Sequence[Any]) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype.kind in ("U", "S"):
            arr = arr.astype(object)
        return arr

    # -- construction -----------------------------------------------------------
    @classmethod
    def _from_columns(cls, cols: Dict[str, np.ndarray]) -> "DataFrame":
        """Internal trusted constructor: adopt arrays without copy/checks."""
        out = cls()
        out._cols = dict(cols)
        return out

    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, Any]], columns: Optional[List[str]] = None
    ) -> "DataFrame":
        records = list(records)
        if not records and not columns:
            return cls()
        names = columns or list(records[0].keys())
        data = {
            name: [rec.get(name) for rec in records] for name in names
        }
        return cls(data)

    @classmethod
    def concat(cls, frames: Sequence["DataFrame"]) -> "DataFrame":
        """Row-wise concatenation; columns are the union, missing -> None.

        Zero-copy per column: each output column is one
        ``np.concatenate`` over the source arrays (plus ``None`` filler
        blocks for frames lacking the column).  Empty-but-typed frames
        contribute their **schema**: concatenating only empty frames
        preserves their columns (and dtypes) instead of collapsing to a
        column-less frame.
        """
        names: List[str] = []
        for f in frames:
            for name in f.columns:
                if name not in names:
                    names.append(name)
        live = [f for f in frames if len(f) > 0]
        if not live:
            # schema-only result: keep each column's typed empty array
            out = cls()
            for f in frames:
                for name, col in f._cols.items():
                    if name not in out._cols:
                        out._cols[name] = col[:0].copy()
            return out
        cols: Dict[str, np.ndarray] = {}
        for name in names:
            pieces = []
            for f in live:
                col = f._cols.get(name)
                if col is None:
                    pieces.append(np.full(len(f), None, dtype=object))
                else:
                    pieces.append(col)
            cols[name] = np.concatenate(pieces)
        return cls._from_columns(cols)

    # -- introspection --------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._cols)

    def __len__(self) -> int:
        if not self._cols:
            return 0
        return len(next(iter(self._cols.values())))

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._cols:
            raise DataFrameError(
                f"no column {name!r}; have {', '.join(self.columns)}"
            )
        return self._cols[name]

    def __setitem__(self, name: str, values: Sequence[Any]) -> None:
        arr = self._as_array(values)
        if self._cols and len(arr) != len(self):
            raise DataFrameError(
                f"column {name!r} length {len(arr)} != frame length {len(self)}"
            )
        self._cols[name] = arr

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def row(self, index: int) -> Dict[str, Any]:
        return {name: self._cols[name][index] for name in self._cols}

    def to_records(self) -> List[Dict[str, Any]]:
        return [self.row(i) for i in range(len(self))]

    # -- transformation -------------------------------------------------------------
    def select(self, names: List[str]) -> "DataFrame":
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise DataFrameError(f"unknown columns {missing}")
        out = DataFrame()
        for n in names:
            out._cols[n] = self._cols[n].copy()
        return out

    def mask(self, condition: np.ndarray) -> "DataFrame":
        condition = np.asarray(condition, dtype=bool)
        if condition.shape != (len(self),):
            raise DataFrameError("mask length mismatch")
        out = DataFrame()
        for name, col in self._cols.items():
            out._cols[name] = col[condition]
        return out

    def filter(self, predicate: Callable[[Mapping], bool]) -> "DataFrame":
        """Keep rows where ``predicate(row)`` is truthy.

        The callable receives a reusable read-only mapping view of the
        row (``row["col"]``); no per-row dict is materialized.
        """
        n = len(self)
        keep = np.empty(n, dtype=bool)
        view = _RowView(self._cols)
        for i in range(n):
            view._i = i
            keep[i] = bool(predicate(view))
        return self.mask(keep)

    def filter_eq(self, column: str, value: Any) -> "DataFrame":
        return self.mask(self[column] == value)

    def filter_in(self, column: str, values: Iterable[Any]) -> "DataFrame":
        values = set(values)
        col = self[column]
        if col.dtype.kind != "O":
            try:
                keep = np.isin(col, list(values))
                return self.mask(keep)
            except (TypeError, ValueError):  # unorderable mix: fall through
                pass
        keep = np.fromiter(
            (v in values for v in col.tolist()), dtype=bool, count=len(col)
        )
        return self.mask(keep)

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        col = self[by]
        order = np.argsort(col, kind="stable")
        if not ascending:
            order = order[::-1]
        out = DataFrame()
        for name, c in self._cols.items():
            out._cols[name] = c[order]
        return out

    def unique(self, column: str) -> List[Any]:
        """Distinct values in first-appearance order (vectorized)."""
        return _factorize(self[column])[1]

    def with_column(
        self, name: str, fn: Callable[[Mapping], Any]
    ) -> "DataFrame":
        out = DataFrame()
        for n, c in self._cols.items():
            out._cols[n] = c.copy()
        view = _RowView(self._cols)
        values = []
        for i in range(len(self)):
            view._i = i
            values.append(fn(view))
        out[name] = values
        return out

    # -- aggregation -----------------------------------------------------------------
    def _group_codes(self, keys: List[str]) -> Tuple[np.ndarray, int]:
        """Combined group id per row, ids in first-appearance order."""
        codes, labels = _factorize(self[keys[0]])
        n_groups = len(labels)
        for key in keys[1:]:
            k_codes, k_labels = _factorize(self[key])
            codes = codes * len(k_labels) + k_codes
            codes, packed = _factorize(codes)
            n_groups = len(packed)
        return codes, n_groups

    def groupby(
        self,
        keys: List[str],
        agg: Dict[str, Callable[[np.ndarray], Any]],
    ) -> "DataFrame":
        """Group rows by key columns and aggregate value columns.

        ``agg`` maps column name -> reducer (e.g. ``np.mean``); group key
        order follows first appearance (stable, deterministic).

        Implementation: factorize the key columns, stable-argsort the
        combined group codes and reduce over the resulting contiguous
        per-group slices.  ``np.min``/``np.max``/``len`` take exact
        vectorized fast paths (``reduceat``/boundary differences);
        order-sensitive float reducers (``np.mean``/``np.sum``) run on
        the contiguous slices so results stay bit-identical to the
        pure-Python reference path.
        """
        n = len(self)
        if n == 0:
            return DataFrame.from_records([], columns=keys + list(agg))
        for key in keys:
            self[key]  # raise DataFrameError on unknown key columns
        codes, n_groups = self._group_codes(keys)
        sort_idx = np.argsort(codes, kind="stable")
        sorted_codes = codes[sort_idx]
        starts = np.empty(n_groups, dtype=np.int64)
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        starts[0] = 0
        starts[1:] = boundaries
        ends = np.empty(n_groups, dtype=np.int64)
        ends[:-1] = boundaries
        ends[-1] = n
        first_rows = sort_idx[starts]  # first appearance of each group

        cols: Dict[str, np.ndarray] = {}
        for key in keys:
            cols[key] = self._cols[key][first_rows]
        counts = ends - starts
        for col_name, reducer in agg.items():
            values = self[col_name]
            fast = _EXACT_FAST_REDUCERS.get(id(reducer))
            if fast == "count":
                cols[col_name] = self._as_array(
                    [int(c) for c in counts]
                )
                continue
            vals_sorted = values[sort_idx]
            if fast in ("min", "max") and vals_sorted.dtype.kind in "iufb":
                ufunc = np.minimum if fast == "min" else np.maximum
                cols[col_name] = ufunc.reduceat(vals_sorted, starts)
                continue
            out_list = [
                reducer(vals_sorted[starts[g]:ends[g]])
                for g in range(n_groups)
            ]
            cols[col_name] = self._as_array(out_list)
        return DataFrame._from_columns(cols)

    def pivot(
        self,
        index: str,
        series: str,
        values: str,
        reducer: Optional[Callable[[np.ndarray], Any]] = None,
    ) -> "tuple[List[Any], Dict[Any, List[Any]]]":
        """Chart-shaped output: ordered index labels and per-series values.

        Missing (index, series) combinations become ``None``, which the
        plotting layer renders as an absent bar (Figure 2's ``*`` boxes).

        Duplicate ``(index, series)`` cells raise :class:`DataFrameError`
        unless an explicit ``reducer`` (e.g. ``np.mean``) is given to
        aggregate them -- silent last-write-wins is never performed.
        """
        idx_codes, idx_labels = _factorize(self[index])
        s_codes, s_labels = _factorize(self[series])
        vals = self[values]
        n_idx, n_s = len(idx_labels), len(s_labels)
        grid = np.full((n_s, n_idx), None, dtype=object)
        if n_idx and n_s:
            cell = s_codes * n_idx + idx_codes
            counts = np.bincount(cell, minlength=n_s * n_idx)
            if (counts > 1).any():
                if reducer is None:
                    dup = int(np.flatnonzero(counts > 1)[0])
                    raise DataFrameError(
                        f"pivot: {int(counts[dup])} rows map to cell "
                        f"(index={idx_labels[dup % n_idx]!r}, "
                        f"series={s_labels[dup // n_idx]!r}); pass "
                        f"reducer= to aggregate duplicates"
                    )
                order = np.argsort(cell, kind="stable")
                sorted_cells = cell[order]
                starts = np.flatnonzero(
                    np.r_[True, sorted_cells[1:] != sorted_cells[:-1]]
                )
                ends = np.r_[starts[1:], len(sorted_cells)]
                vals_sorted = vals[order]
                flat = grid.reshape(-1)
                for g in range(len(starts)):
                    flat[sorted_cells[starts[g]]] = reducer(
                        vals_sorted[starts[g]:ends[g]]
                    )
            else:
                grid.reshape(-1)[cell] = vals
        table: Dict[Any, List[Any]] = {
            s: list(grid[k]) for k, s in enumerate(s_labels)
        }
        return idx_labels, table

    # -- io -----------------------------------------------------------------------------
    def to_csv(self, typed: bool = True) -> str:
        r"""Serialize to CSV.

        With ``typed=True`` (default) every header cell carries a dtype
        tag (``perf_value:float``, ``system:str``, ...) and string cells
        are losslessly escaped: ``None`` -> ``\N``, a leading backslash
        gains one escape backslash.  :meth:`from_csv` reverses both, so
        the perflog schema round-trips exactly -- ``None`` stays ``None``
        and ``"1e3"``-shaped system names stay strings.  ``typed=False``
        reproduces the legacy untyped format.
        """
        buf = io.StringIO()
        writer = csv.writer(buf)
        names = self.columns
        if not typed:
            writer.writerow(names)
            for i in range(len(self)):
                writer.writerow([self._cols[n][i] for n in names])
            return buf.getvalue()
        tags = {
            n: _CSV_DTYPE_TAGS.get(self._cols[n].dtype.kind, "str")
            for n in names
        }
        writer.writerow([f"{n}:{tags[n]}" for n in names])
        encoders = {
            n: (_csv_encode_str if tags[n] == "str" else str) for n in names
        }
        for i in range(len(self)):
            writer.writerow([encoders[n](self._cols[n][i]) for n in names])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "DataFrame":
        reader = csv.reader(io.StringIO(text))
        rows = list(reader)
        if not rows:
            return cls()
        header, body = rows[0], rows[1:]
        typed = bool(header) and all(
            ":" in h and h.rsplit(":", 1)[1] in _CSV_TAG_SET for h in header
        )
        if not typed:
            # legacy untyped CSV: per-cell float inference
            data: Dict[str, List[Any]] = {h: [] for h in header}
            for row in body:
                for h, v in zip(header, row):
                    try:
                        data[h].append(float(v))
                    except ValueError:
                        data[h].append(v)
            return cls(data)
        names, tags = zip(*(h.rsplit(":", 1) for h in header))
        for row in body:
            if len(row) != len(names):
                raise DataFrameError(
                    f"from_csv: row has {len(row)} cells, "
                    f"header has {len(names)}"
                )
        cols: Dict[str, np.ndarray] = {}
        for k, (name, tag) in enumerate(zip(names, tags)):
            cells = [row[k] for row in body]
            if tag == "float":
                cols[name] = np.array([float(c) for c in cells],
                                      dtype=np.float64)
            elif tag == "int":
                cols[name] = np.array([int(c) for c in cells],
                                      dtype=np.int64)
            elif tag == "bool":
                cols[name] = np.array([c == "True" for c in cells],
                                      dtype=bool)
            else:
                cols[name] = np.array(
                    [_csv_decode_str(c) for c in cells], dtype=object
                )
        return cls._from_columns(cols)

    def __repr__(self) -> str:
        return f"DataFrame({len(self)} rows x {len(self.columns)} cols)"

    def to_string(self, max_rows: int = 20) -> str:
        names = self.columns
        if not names:
            return "(empty DataFrame)"
        rows = [names] + [
            [str(self._cols[n][i]) for n in names]
            for i in range(min(len(self), max_rows))
        ]
        widths = [max(len(r[c]) for r in rows) for c in range(len(names))]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in rows
        ]
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more rows)")
        return "\n".join(lines)
