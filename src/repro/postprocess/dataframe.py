"""A minimal column-store DataFrame (the pandas subset the pipeline needs).

Columns are numpy arrays (object dtype for strings), rows are implicit.
Supported operations mirror what the paper's post-processing scripts do
with pandas: construction from records, selection, boolean-mask
filtering, concatenation (the "crucial" cross-platform assimilation
step), group-by aggregation, sorting, pivoting for chart series, and CSV
round-tripping.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["DataFrame", "DataFrameError"]


class DataFrameError(ValueError):
    """Schema violations: unknown columns, ragged data, bad merges."""


class DataFrame:
    """An ordered mapping column-name -> numpy array, all equal length."""

    def __init__(self, data: Optional[Dict[str, Sequence[Any]]] = None):
        self._cols: Dict[str, np.ndarray] = {}
        if data:
            lengths = {len(v) for v in data.values()}
            if len(lengths) > 1:
                raise DataFrameError(f"ragged columns: lengths {sorted(lengths)}")
            for name, values in data.items():
                self._cols[name] = self._as_array(values)

    @staticmethod
    def _as_array(values: Sequence[Any]) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype.kind in ("U", "S"):
            arr = arr.astype(object)
        return arr

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, Any]], columns: Optional[List[str]] = None
    ) -> "DataFrame":
        records = list(records)
        if not records and not columns:
            return cls()
        names = columns or list(records[0].keys())
        data = {
            name: [rec.get(name) for rec in records] for name in names
        }
        return cls(data)

    @classmethod
    def concat(cls, frames: Sequence["DataFrame"]) -> "DataFrame":
        """Row-wise concatenation; columns are the union, missing -> None."""
        frames = [f for f in frames if len(f) > 0]
        if not frames:
            return cls()
        names: List[str] = []
        for f in frames:
            for name in f.columns:
                if name not in names:
                    names.append(name)
        data: Dict[str, List[Any]] = {n: [] for n in names}
        for f in frames:
            n = len(f)
            for name in names:
                if name in f._cols:
                    data[name].extend(f._cols[name].tolist())
                else:
                    data[name].extend([None] * n)
        return cls(data)

    # -- introspection --------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._cols)

    def __len__(self) -> int:
        if not self._cols:
            return 0
        return len(next(iter(self._cols.values())))

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._cols:
            raise DataFrameError(
                f"no column {name!r}; have {', '.join(self.columns)}"
            )
        return self._cols[name]

    def __setitem__(self, name: str, values: Sequence[Any]) -> None:
        arr = self._as_array(values)
        if self._cols and len(arr) != len(self):
            raise DataFrameError(
                f"column {name!r} length {len(arr)} != frame length {len(self)}"
            )
        self._cols[name] = arr

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def row(self, index: int) -> Dict[str, Any]:
        return {name: self._cols[name][index] for name in self._cols}

    def to_records(self) -> List[Dict[str, Any]]:
        return [self.row(i) for i in range(len(self))]

    # -- transformation -------------------------------------------------------------
    def select(self, names: List[str]) -> "DataFrame":
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise DataFrameError(f"unknown columns {missing}")
        out = DataFrame()
        for n in names:
            out._cols[n] = self._cols[n].copy()
        return out

    def mask(self, condition: np.ndarray) -> "DataFrame":
        condition = np.asarray(condition, dtype=bool)
        if condition.shape != (len(self),):
            raise DataFrameError("mask length mismatch")
        out = DataFrame()
        for name, col in self._cols.items():
            out._cols[name] = col[condition]
        return out

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "DataFrame":
        keep = np.array(
            [bool(predicate(self.row(i))) for i in range(len(self))], dtype=bool
        )
        return self.mask(keep)

    def filter_eq(self, column: str, value: Any) -> "DataFrame":
        return self.mask(self[column] == value)

    def filter_in(self, column: str, values: Iterable[Any]) -> "DataFrame":
        values = set(values)
        keep = np.array([v in values for v in self[column]], dtype=bool)
        return self.mask(keep)

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        col = self[by]
        order = np.argsort(col, kind="stable")
        if not ascending:
            order = order[::-1]
        out = DataFrame()
        for name, c in self._cols.items():
            out._cols[name] = c[order]
        return out

    def unique(self, column: str) -> List[Any]:
        seen: Dict[Any, None] = {}
        for v in self[column]:
            seen.setdefault(v, None)
        return list(seen)

    def with_column(
        self, name: str, fn: Callable[[Dict[str, Any]], Any]
    ) -> "DataFrame":
        out = DataFrame()
        for n, c in self._cols.items():
            out._cols[n] = c.copy()
        out[name] = [fn(self.row(i)) for i in range(len(self))]
        return out

    # -- aggregation -----------------------------------------------------------------
    def groupby(
        self,
        keys: List[str],
        agg: Dict[str, Callable[[np.ndarray], Any]],
    ) -> "DataFrame":
        """Group rows by key columns and aggregate value columns.

        ``agg`` maps column name -> reducer (e.g. ``np.mean``); group key
        order follows first appearance (stable, deterministic).
        """
        groups: Dict[tuple, List[int]] = {}
        for i in range(len(self)):
            key = tuple(self._cols[k][i] for k in keys)
            groups.setdefault(key, []).append(i)
        records = []
        for key, idxs in groups.items():
            rec = dict(zip(keys, key))
            for col, reducer in agg.items():
                values = self[col][idxs]
                rec[col] = reducer(values)
            records.append(rec)
        return DataFrame.from_records(records, columns=keys + list(agg))

    def pivot(
        self, index: str, series: str, values: str
    ) -> "tuple[List[Any], Dict[Any, List[Any]]]":
        """Chart-shaped output: ordered index labels and per-series values.

        Missing (index, series) combinations become ``None``, which the
        plotting layer renders as an absent bar (Figure 2's ``*`` boxes).
        """
        idx_labels = self.unique(index)
        series_labels = self.unique(series)
        table: Dict[Any, List[Any]] = {
            s: [None] * len(idx_labels) for s in series_labels
        }
        pos = {label: i for i, label in enumerate(idx_labels)}
        for i in range(len(self)):
            row_idx = pos[self._cols[index][i]]
            table[self._cols[series][i]][row_idx] = self._cols[values][i]
        return idx_labels, table

    # -- io -----------------------------------------------------------------------------
    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for i in range(len(self)):
            writer.writerow([self._cols[n][i] for n in self.columns])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "DataFrame":
        reader = csv.reader(io.StringIO(text))
        rows = list(reader)
        if not rows:
            return cls()
        header, body = rows[0], rows[1:]
        data: Dict[str, List[Any]] = {h: [] for h in header}
        for row in body:
            for h, v in zip(header, row):
                try:
                    data[h].append(float(v))
                except ValueError:
                    data[h].append(v)
        return cls(data)

    def __repr__(self) -> str:
        return f"DataFrame({len(self)} rows x {len(self.columns)} cols)"

    def to_string(self, max_rows: int = 20) -> str:
        names = self.columns
        if not names:
            return "(empty DataFrame)"
        rows = [names] + [
            [str(self._cols[n][i]) for n in names]
            for i in range(min(len(self), max_rows))
        ]
        widths = [max(len(r[c]) for r in rows) for c in range(len(names))]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in rows
        ]
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more rows)")
        return "\n".join(lines)
