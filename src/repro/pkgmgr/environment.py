"""Spack-style environments: what one system makes available.

The paper: "We create a Spack environment detailing the compilers and
relevant packages available in all the systems we run benchmarks on, to
reuse as many existing packages as possible" (Section 2.2), and "If the
benchmarks are run on a system not yet supported by our framework, a basic
Spack environment will be automatically created, but no system packages
will be added."

An :class:`Environment` bundles

* a :class:`~repro.pkgmgr.compilers.CompilerRegistry`,
* *external packages* -- system installs the concretizer must reuse instead
  of building (e.g. ``cray-mpich@8.1.23`` on ARCHER2),
* *preferences* -- e.g. which ``mpi`` provider the system favours,
* the architecture facts (``target``, ``device``, ``vendor``) injected into
  every concretized root so recipes can express platform conflicts,
* a lockfile of everything concretized in it (archaeological
  reproducibility, Principle 4).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.pkgmgr.compilers import Compiler, CompilerRegistry
from repro.pkgmgr.spec import Spec

__all__ = ["Environment", "ExternalPackage"]


class ExternalPackage:
    """A package the system provides (never rebuilt).

    ``spec`` must be fully pinned (name + version); ``prefix`` documents
    where it lives, ``modules`` which environment modules expose it.
    """

    __slots__ = ("spec", "prefix", "modules", "buildable")

    def __init__(
        self,
        spec: str | Spec,
        prefix: str = "",
        modules: Optional[List[str]] = None,
        buildable: bool = True,
    ):
        self.spec = Spec(spec) if isinstance(spec, str) else spec
        if self.spec.name is None:
            raise ValueError(f"external needs a package name: {spec}")
        self.prefix = prefix or f"/usr/local/{self.spec.name}"
        self.modules = list(modules or [])
        self.buildable = buildable

    def __repr__(self) -> str:
        return f"ExternalPackage({self.spec})"


class Environment:
    """One system's package-management context."""

    def __init__(
        self,
        name: str,
        compilers: Optional[CompilerRegistry] = None,
        externals: Optional[List[ExternalPackage]] = None,
        preferences: Optional[Dict[str, str]] = None,
        arch: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.compilers = compilers or CompilerRegistry()
        self.externals: List[ExternalPackage] = list(externals or [])
        #: virtual/package name -> preferred concrete spec string
        self.preferences: Dict[str, str] = dict(preferences or {})
        #: architecture facts injected into concretized specs
        self.arch: Dict[str, str] = dict(
            arch or {"target": "x86_64", "device": "cpu", "vendor": "generic"}
        )
        #: hash -> dag_dict of every spec concretized here (the lockfile)
        self.lockfile: Dict[str, dict] = {}

    @classmethod
    def basic(cls, name: str) -> "Environment":
        """The auto-created environment for an unknown system.

        No system packages are added (matching the paper); a lone recent gcc
        is registered so builds remain possible.
        """
        reg = CompilerRegistry([Compiler("gcc", "12.1.0")])
        return cls(name, compilers=reg)

    # -- externals ------------------------------------------------------------
    def add_external(self, external: ExternalPackage | str) -> None:
        if isinstance(external, str):
            external = ExternalPackage(external)
        self.externals.append(external)

    def find_external(self, constraint: Spec) -> Optional[ExternalPackage]:
        """Best external satisfying *constraint* (newest version wins).

        Externals match on name and version only: the system install's
        compiler provenance is unknown (it predates our environment), so a
        ``%compiler`` requirement on the constraint does not disqualify it.
        This mirrors Spack, where externals are taken as-is.
        """
        matches = []
        for e in self.externals:
            if constraint.name is not None and e.spec.name != constraint.name:
                continue
            if not constraint.versions.is_any and not constraint.versions.includes(
                e.spec.version
            ):
                continue
            matches.append(e)
        if not matches:
            return None
        return max(matches, key=lambda e: e.spec.version)

    # -- fingerprinting ---------------------------------------------------------
    def config_fingerprint(self) -> str:
        """Content hash of everything that can influence concretization.

        Two environments with identical configuration (compilers in the
        same registration order -- order decides the default -- plus the
        same externals, preferences, and architecture facts) fingerprint
        identically, which is what lets the concretization memo cache
        (:mod:`repro.pkgmgr.memo`) share solutions across the fresh
        ``Environment`` objects :func:`repro.systems.registry.system_environment`
        builds per case.  Any change to the system's ``packages.yaml``
        equivalent (a new external, a different MPI preference) changes
        the fingerprint and therefore invalidates all cached solutions.

        The *name* and the lockfile are deliberately excluded: neither
        affects what the solver picks.
        """
        doc = {
            # registration order matters: the first compiler is the default
            "compilers": [str(c) for c in self.compilers],
            "externals": sorted(
                f"{e.spec.format()}|buildable={e.buildable}"
                for e in self.externals
            ),
            "preferences": sorted(self.preferences.items()),
            "arch": sorted(self.arch.items()),
        }
        blob = json.dumps(doc, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- lockfile ---------------------------------------------------------------
    def record(self, spec: Spec) -> str:
        """Add a concretized spec to the lockfile; returns its hash."""
        h = spec.dag_hash()
        self.lockfile[h] = spec.dag_dict()
        return h

    def lockfile_json(self) -> str:
        return json.dumps(
            {"environment": self.name, "specs": self.lockfile},
            indent=2,
            sort_keys=True,
        )

    def __repr__(self) -> str:
        return (
            f"Environment({self.name!r}, {len(self.compilers)} compilers, "
            f"{len(self.externals)} externals)"
        )
