"""Build variants: boolean and (multi-)valued options on packages.

A recipe declares variants (``variant('omp', default=True)``); a spec selects
them (``+omp``, ``~cuda``, ``backend=openmp``).  :class:`VariantMap` stores a
spec's selections and supports the constraint operations the concretizer
needs: satisfaction checks and conflict-detecting merges.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Tuple, Union

__all__ = ["Variant", "VariantMap", "VariantError"]


class VariantError(ValueError):
    """Raised on undefined variants, bad values, or conflicting selections."""


class Variant:
    """Declaration of a variant in a package recipe.

    Parameters
    ----------
    name:
        Variant name as it appears in specs.
    default:
        Value assumed when a spec does not mention the variant.
    description:
        Human-readable help, shown by ``repro-pkg info``.
    values:
        Allowed values.  ``(True, False)`` declares a boolean variant;
        any other tuple declares a string-valued variant.
    multi:
        If True, a spec may select several values (``languages=c,fortran``).
    """

    __slots__ = ("name", "default", "description", "values", "multi")

    def __init__(
        self,
        name: str,
        default: Any = False,
        description: str = "",
        values: Tuple[Any, ...] = (True, False),
        multi: bool = False,
    ):
        self.name = name
        self.default = default
        self.description = description
        self.values = tuple(values)
        self.multi = multi
        if multi:
            defaults = self._split(default)
            bad = [d for d in defaults if d not in self.values]
        else:
            bad = [] if default in self.values else [default]
        if bad:
            raise VariantError(
                f"default {bad!r} not among allowed values {self.values!r} "
                f"for variant {name!r}"
            )

    @property
    def is_boolean(self) -> bool:
        return set(self.values) == {True, False}

    @staticmethod
    def _split(value: Any) -> Tuple[Any, ...]:
        if isinstance(value, str) and "," in value:
            return tuple(value.split(","))
        if isinstance(value, (tuple, list)):
            return tuple(value)
        return (value,)

    def validate(self, value: Any) -> Any:
        """Normalize & check a value selected in a spec; raise on bad values."""
        if self.is_boolean:
            if isinstance(value, str):
                low = value.lower()
                if low in ("true", "on", "1"):
                    value = True
                elif low in ("false", "off", "0"):
                    value = False
            if not isinstance(value, bool):
                raise VariantError(
                    f"variant {self.name!r} is boolean, got {value!r}"
                )
            return value
        if self.multi:
            vals = self._split(value)
            for v in vals:
                if v not in self.values:
                    raise VariantError(
                        f"invalid value {v!r} for multi-variant {self.name!r}; "
                        f"allowed: {self.values!r}"
                    )
            return tuple(sorted(vals))
        if value not in self.values:
            raise VariantError(
                f"invalid value {value!r} for variant {self.name!r}; "
                f"allowed: {self.values!r}"
            )
        return value

    def __repr__(self) -> str:
        return f"Variant({self.name!r}, default={self.default!r})"


def _format_value(name: str, value: Any) -> str:
    if value is True:
        return f"+{name}"
    if value is False:
        return f"~{name}"
    if isinstance(value, tuple):
        return f"{name}={','.join(str(v) for v in value)}"
    return f"{name}={value}"


class VariantMap:
    """The variant selections carried by a spec.

    Behaves like a mapping ``name -> value`` where a value is ``True``,
    ``False``, a string, or a tuple of strings (multi variants).
    """

    __slots__ = ("_data",)

    def __init__(self, data: Optional[Mapping[str, Any]] = None):
        self._data: dict[str, Any] = dict(data or {})

    def copy(self) -> "VariantMap":
        return VariantMap(self._data)

    def __getitem__(self, name: str) -> Any:
        return self._data[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self._data[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self):
        return iter(sorted(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def get(self, name: str, default: Any = None) -> Any:
        return self._data.get(name, default)

    def items(self) -> Iterable[Tuple[str, Any]]:
        return sorted(self._data.items())

    def satisfies(self, other: "VariantMap") -> bool:
        """True when every selection in *other* is present and equal here.

        This is the asymmetric "spec satisfies constraint" relation: the
        constraint (*other*) may mention fewer variants.
        """
        for name, want in other._data.items():
            if name not in self._data:
                return False
            have = self._data[name]
            if isinstance(have, tuple) and not isinstance(want, tuple):
                if want not in have:
                    return False
            elif isinstance(have, tuple) and isinstance(want, tuple):
                if not set(want) <= set(have):
                    return False
            elif have != want:
                return False
        return True

    def merge(self, other: "VariantMap") -> "VariantMap":
        """Combine two constraint maps; raise :class:`VariantError` on clash."""
        out = self.copy()
        for name, value in other._data.items():
            if name in out._data and out._data[name] != value:
                a, b = out._data[name], value
                if isinstance(a, tuple) and isinstance(b, tuple):
                    out._data[name] = tuple(sorted(set(a) | set(b)))
                    continue
                raise VariantError(
                    f"conflicting values for variant {name!r}: {a!r} vs {b!r}"
                )
            out._data[name] = value
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VariantMap):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v) for k, v in self._data.items())))

    def __str__(self) -> str:
        if not self._data:
            return ""
        # booleans render glued together (+omp~cuda), key=value space-separated,
        # matching Spack's spec output format.
        bool_part = "".join(
            _format_value(k, self._data[k])
            for k in sorted(self._data)
            if isinstance(self._data[k], bool)
        )
        kv_part = " ".join(
            _format_value(k, self._data[k])
            for k in sorted(self._data)
            if not isinstance(self._data[k], bool)
        )
        return " ".join(p for p in (bool_part, kv_part) if p)

    def __repr__(self) -> str:
        return f"VariantMap({self._data!r})"
