"""Content-addressed memoization of concretizer solutions.

A benchmarking campaign (the paper's Figure 1 workflow) fans one abstract
spec out over many ``(variant, environment)`` cases, and most of those
cases concretize *exactly the same* dependency DAG: ``babelstream%gcc``
against the ARCHER2 environment resolves identically no matter which
BabelStream variant asked.  Re-running the greedy fixpoint solver per case
is pure waste -- exaCB-style incremental collections show that caching the
solve is the key scaling lever.

The cache is **content-addressed**: the key is a hash of

* the abstract spec's canonical rendering,
* the environment's *configuration fingerprint* (compilers, externals,
  preferences, architecture facts -- the ``packages.yaml`` equivalent),
* the recipe repository's package inventory.

so a changed system configuration (a new external, a different preferred
MPI) can never serve a stale solution: the key simply differs and the
solver runs again (the "invalidation by construction" property).

Reproducibility invariants:

* Cache hits return a **deep copy** of the stored concrete spec, so no
  caller can mutate the cached DAG.
* The cache memoizes only the *solve*; installation is untouched.  The
  root is still rebuilt on every run (Principle 3) by the installer, and
  the environment lockfile still records every concretization
  (archaeological reproducibility, Principle 4).
* Hit/miss accounting is exposed via :class:`CacheStats` so provenance
  records can carry whether a case's spec came from the memo table.

Thread safety: a single lock guards the table; the cache is shared by all
workers of the async execution policy (:mod:`repro.runner.parallel`).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.pkgmgr.environment import Environment
    from repro.pkgmgr.repository import RepoPath
    from repro.pkgmgr.spec import Spec

__all__ = ["CacheStats", "ConcretizationCache", "MemoizedFailure"]


class MemoizedFailure:
    """A memoized *unsatisfiable* concretization.

    Conflicts are a function of the same content key as solutions (a
    ``babelstream +cuda`` solve against a CPU system fails identically
    every time), so the campaign pays exactly **one miss per unique
    spec x system** -- impossible combinations included.  The concretizer
    re-raises the recorded message on a hit.
    """

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message

    def __repr__(self) -> str:
        return f"MemoizedFailure({self.message!r})"


class CacheStats:
    """Hit/miss accounting for one cache instance."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo table (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def publish(self, registry, prefix: str = "concretize") -> None:
        """Fold these counts into a ``MetricsRegistry`` as ``prefix.*``.

        The unified metrics namespace (DESIGN.md section 7): the memo's
        integer counts become additive counters; ``hit_rate`` is skipped
        by ``merge_counts`` -- it is derivable and would not merge.
        """
        registry.merge_counts(prefix, self.as_dict())

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.2%})"
        )


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class ConcretizationCache:
    """LRU memo table ``(abstract spec, env config, repo) -> concrete Spec``.

    Pass one instance to every :class:`~repro.pkgmgr.concretizer.Concretizer`
    that should share solutions (the executor threads one through a whole
    campaign).  ``max_entries`` bounds memory; eviction is LRU.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._table: "OrderedDict[str, Spec]" = OrderedDict()
        self._lock = threading.Lock()

    # -- keys -----------------------------------------------------------------
    @staticmethod
    def key_for(spec: "Spec", env: "Environment", repo: "RepoPath") -> str:
        """The content address of one concretization problem."""
        blob = json.dumps(
            {
                "spec": spec.format(),
                "env": env.config_fingerprint(),
                "repo": _sha(",".join(repo.all_package_names())),
            },
            sort_keys=True,
        )
        return _sha(blob)

    # -- table ----------------------------------------------------------------
    def lookup(self, key: str):
        """The memoized outcome, or ``None`` on miss.

        A hit is either a concrete :class:`Spec` (returned as a defensive
        copy) or a :class:`MemoizedFailure` (immutable, returned as-is)
        when the same problem previously proved unsatisfiable.
        """
        with self._lock:
            cached = self._table.get(key)
            if cached is None:
                self.stats.misses += 1
                return None
            self._table.move_to_end(key)
            self.stats.hits += 1
            if isinstance(cached, MemoizedFailure):
                return cached
            return cached.copy()

    def store(self, key: str, concrete: "Spec") -> None:
        """Memoize a freshly-solved concrete spec."""
        self._store(key, concrete.copy())

    def store_failure(self, key: str, message: str) -> None:
        """Memoize an unsatisfiable problem (e.g. a variant conflict)."""
        self._store(key, MemoizedFailure(message))

    def _store(self, key: str, payload) -> None:
        with self._lock:
            self._table[key] = payload
            self._table.move_to_end(key)
            while len(self._table) > self.max_entries:
                self._table.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    def __repr__(self) -> str:
        return (
            f"ConcretizationCache({len(self)} entries, "
            f"{self.stats.hits} hits / {self.stats.misses} misses)"
        )
