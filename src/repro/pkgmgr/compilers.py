"""Compiler registry: which compilers exist on a (simulated) system.

Mirrors Spack's ``compilers.yaml``.  Each system's environment registers the
compilers its modules provide; the concretizer resolves ``%gcc`` to the
newest registered gcc, and ``%gcc@9.2.0`` must match a registered entry
(you cannot use a compiler the machine does not have -- the practical
failure mode the paper hits with "the build system has conflicts with newer
versions" on Isambard-MACS:Volta).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pkgmgr.spec import CompilerSpec
from repro.pkgmgr.version import Version, VersionList

__all__ = ["Compiler", "CompilerRegistry", "CompilerNotFoundError"]


class CompilerNotFoundError(LookupError):
    """Raised when a requested compiler is not installed on the system."""


class Compiler:
    """One installed compiler: name, version, and flag personality."""

    __slots__ = ("name", "version", "cc", "cxx", "fc", "flags", "modules")

    def __init__(
        self,
        name: str,
        version: str,
        cc: Optional[str] = None,
        cxx: Optional[str] = None,
        fc: Optional[str] = None,
        flags: Optional[Dict[str, str]] = None,
        modules: Optional[List[str]] = None,
    ):
        defaults = {
            "gcc": ("gcc", "g++", "gfortran"),
            "oneapi": ("icx", "icpx", "ifx"),
            "intel-oneapi-compilers": ("icx", "icpx", "ifx"),
            "cce": ("cc", "CC", "ftn"),
            "nvhpc": ("nvc", "nvc++", "nvfortran"),
            "aocc": ("clang", "clang++", "flang"),
        }
        d_cc, d_cxx, d_fc = defaults.get(name, ("cc", "c++", "fc"))
        self.name = name
        self.version = Version(version)
        self.cc = cc or d_cc
        self.cxx = cxx or d_cxx
        self.fc = fc or d_fc
        self.flags = dict(flags or {})
        self.modules = list(modules or [])

    @property
    def spec(self) -> CompilerSpec:
        return CompilerSpec(self.name, VersionList([self.version]))

    def satisfies(self, want: CompilerSpec) -> bool:
        if self.name != want.name:
            return False
        return want.versions.is_any or want.versions.includes(self.version)

    def __repr__(self) -> str:
        return f"Compiler({self.name}@{self.version})"

    def __str__(self) -> str:
        return f"{self.name}@{self.version}"


class CompilerRegistry:
    """The compilers available on one system."""

    def __init__(self, compilers: Optional[List[Compiler]] = None):
        self._compilers: List[Compiler] = list(compilers or [])

    def add(self, compiler: Compiler) -> None:
        self._compilers.append(compiler)

    def __iter__(self):
        return iter(self._compilers)

    def __len__(self) -> int:
        return len(self._compilers)

    def find(self, want: CompilerSpec) -> Compiler:
        """Resolve a compiler constraint against the installed set.

        An unversioned request (``%gcc``) resolves to the *first registered*
        match -- the system's default module, which is how the paper's
        Table 3 ends up with gcc 9.2.0 on Isambard-MACS while newer gccs
        exist there.  A versioned request picks the newest matching install.
        """
        matches = [c for c in self._compilers if c.satisfies(want)]
        if not matches:
            installed = ", ".join(str(c) for c in self._compilers) or "none"
            raise CompilerNotFoundError(
                f"no compiler satisfying {want} (installed: {installed})"
            )
        if want.versions.is_any:
            return matches[0]
        return max(matches, key=lambda c: c.version)

    def default(self) -> Compiler:
        """The system default compiler (first registered, like module default)."""
        if not self._compilers:
            raise CompilerNotFoundError("no compilers registered")
        return self._compilers[0]

    def __repr__(self) -> str:
        return f"CompilerRegistry({[str(c) for c in self._compilers]})"
