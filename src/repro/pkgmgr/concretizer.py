"""The concretizer: turn an abstract spec into a fully-pinned build DAG.

This is the piece of Spack the paper's reproducibility story leans on
hardest: "Spack's concretization mechanism records these steps so that they
can be inspected later ('archaeological reproducibility')" (Section 2.2).
Table 3 of the paper is nothing but concretizer output -- the gcc, Python
and MPI versions picked for ``hpgmg%gcc`` on four systems.

Algorithm (a deterministic, greedy fixpoint -- adequate for recipe DAGs of
this size and, unlike Spack's ASP solver, fully explainable):

1. normalize the root (attach recipe defaults: preferred version, default
   variants, architecture facts from the environment),
2. expand dependencies breadth-first, folding every dependent's constraint
   into a single node per package name (unification),
3. resolve virtual dependencies (``mpi``) via environment preferences,
   externals, then any provider,
4. prefer environment externals over source builds,
5. pin versions (highest admitted), compilers (environment resolution),
   variants (declared defaults), and inherit the compiler down the DAG,
6. check every ``conflicts`` directive against the final configuration,
7. topologically order via :mod:`networkx` and seal the spec.

Concretization is *idempotent* (concretizing a concrete spec returns an
equal spec) and *deterministic*; both properties are enforced by the test
suite with hypothesis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.pkgmgr.environment import Environment
from repro.pkgmgr.memo import ConcretizationCache, MemoizedFailure
from repro.pkgmgr.package import PackageBase
from repro.pkgmgr.repository import RepoPath, UnknownPackageError, default_repo_path
from repro.pkgmgr.spec import CompilerSpec, Spec
from repro.pkgmgr.variant import VariantMap, VariantError
from repro.pkgmgr.version import VersionList

__all__ = ["Concretizer", "ConcretizationError", "concretize"]


class ConcretizationError(Exception):
    """Raised when no concrete configuration satisfies all constraints."""


#: Architecture facts the environment injects into root specs, usable in
#: recipe ``conflicts(... when='target=aarch64')`` clauses.
ARCH_KEYS = ("target", "device", "vendor")


class Concretizer:
    """Concretizes specs against a recipe repository and an environment."""

    def __init__(
        self,
        repo: Optional[RepoPath] = None,
        env: Optional[Environment] = None,
        cache: Optional[ConcretizationCache] = None,
    ):
        self.repo = repo or default_repo_path()
        self.env = env or Environment.basic("generic")
        #: optional shared memo table (see :mod:`repro.pkgmgr.memo`)
        self.cache = cache
        #: after :meth:`concretize`: True (served from cache), False
        #: (solved and stored), or None (no cache attached / spec was
        #: already concrete).  Consumed by the pipeline for provenance.
        self.last_cache_hit: Optional[bool] = None

    # ------------------------------------------------------------------ api --
    def concretize(self, spec: Spec | str) -> Spec:
        """Return a new, concrete spec satisfying *spec* in this environment."""
        root = Spec(spec) if isinstance(spec, str) else spec.copy()
        self.last_cache_hit = None
        if root.name is None:
            raise ConcretizationError(f"cannot concretize anonymous spec: {root}")
        if root.concrete:
            return root.copy()

        key = None
        if self.cache is not None:
            key = self.cache.key_for(root, self.env, self.repo)
            memoized = self.cache.lookup(key)
            if memoized is not None:
                # the *solve* is reused; the lockfile still records the
                # concretization (Principle 4) and the installer still
                # rebuilds the root (Principle 3)
                self.last_cache_hit = True
                if isinstance(memoized, MemoizedFailure):
                    # the identical problem already proved unsatisfiable
                    raise ConcretizationError(memoized.message)
                self.env.record(memoized)
                return memoized
            self.last_cache_hit = False

        try:
            nodes, edges = self._expand(root)
            self._pin_all(nodes, root.name)
            self._propagate_compiler(nodes, edges, root.name)
            self._check_conflicts(nodes)
            concrete = self._assemble(nodes, edges, root.name)
        except ConcretizationError as exc:
            # unsatisfiability is as deterministic as a solution: memoize
            # it so a campaign pays one miss per unique spec x system even
            # for its impossible (spec, platform) combinations
            if self.cache is not None and key is not None:
                self.cache.store_failure(key, str(exc))
            raise
        concrete.mark_concrete()
        self.env.record(concrete)
        if self.cache is not None and key is not None:
            self.cache.store(key, concrete)
        return concrete

    # ----------------------------------------------------------- expansion --
    def _recipe(self, name: str) -> type[PackageBase]:
        try:
            return self.repo.get(name)
        except UnknownPackageError:
            raise ConcretizationError(
                f"unknown package {name!r}; add a recipe to a repository "
                f"(paper Section 2.2: custom repositories)"
            ) from None

    def _providers_of(self, virtual: str) -> List[str]:
        out = []
        for name in self.repo.all_package_names():
            recipe = self.repo.get(name)
            if virtual in getattr(recipe, "provides_decl", ()):
                out.append(name)
        return sorted(out)

    def _resolve_virtual(
        self,
        virtual: str,
        constraint: Spec,
        hints: Tuple[str, ...] = (),
    ) -> Spec:
        """Pick a provider for a virtual dep.

        Priority: an explicitly requested provider (``^openmpi`` on the
        command line) > environment preference > an external provider >
        first provider alphabetically.
        """
        providers = self._providers_of(virtual)
        if not providers:
            raise ConcretizationError(f"no provider for virtual package {virtual!r}")
        hinted = [h for h in hints if h in providers]
        if hinted:
            chosen = Spec(hinted[0])
            resolved = chosen.copy()
            carried = constraint.copy()
            carried.name = resolved.name
            return resolved.constrain(carried)
        # environment preference ('mpi' -> 'cray-mpich@8.1.23')
        pref = self.env.preferences.get(virtual)
        if pref is not None:
            pref_spec = Spec(pref)
            if pref_spec.name not in providers:
                raise ConcretizationError(
                    f"environment prefers {pref!r} for {virtual!r}, "
                    f"but it does not provide it"
                )
            chosen = pref_spec
        else:
            # an external provider beats building one from source
            ext_names = [
                e.spec.name
                for e in self.env.externals
                if e.spec.name in providers
            ]
            chosen = Spec(ext_names[0]) if ext_names else Spec(providers[0])
        resolved = chosen.copy()
        # carry over the virtual constraint's version bounds etc.
        carried = constraint.copy()
        carried.name = resolved.name
        return resolved.constrain(carried)

    def _expand(self, root: Spec) -> Tuple[Dict[str, Spec], List[Tuple[str, str]]]:
        """BFS dependency expansion with constraint unification.

        Returns the per-name unified constraint nodes and the dependency
        edges discovered from recipes and explicit ``^`` clauses.
        """
        nodes: Dict[str, Spec] = {}
        edges: List[Tuple[str, str]] = []

        # explicit ^deps on the CLI constrain, and also force, those packages
        explicit: Dict[str, Spec] = {}
        for dep_name, dep in root.dependencies.items():
            explicit[dep_name] = dep.copy()
        bare_root = root.copy(deps=False)
        # architecture facts are attached to every node so conflicts like
        # `when='target=aarch64'` can see them anywhere in the DAG
        arch_map = VariantMap({k: v for k, v in self.env.arch.items()})
        work = [bare_root]

        guard = 0
        while work:
            guard += 1
            if guard > 10_000:  # pragma: no cover - cycle safety net
                raise ConcretizationError("dependency expansion did not converge")
            node = work.pop(0)
            assert node.name is not None
            name = node.name
            if name in nodes:
                try:
                    nodes[name] = nodes[name].constrain(node)
                except Exception as exc:
                    raise ConcretizationError(
                        f"conflicting requirements on {name}: {exc}"
                    ) from exc
            else:
                nodes[name] = node.copy(deps=False)
                nodes[name].variants = nodes[name].variants.merge(arch_map)

            recipe = self._recipe(name)
            current = nodes[name]
            # validate explicit selections and reject unknown variants, but do
            # NOT bake defaults into the node yet: a later explicit constraint
            # (e.g. `^kokkos backend=cuda`) must not clash with a default.
            validated = {}
            for vname, value in current.variants.items():
                if vname in ARCH_KEYS:
                    validated[vname] = value
                elif vname in recipe.variants_decl:
                    validated[vname] = recipe.variants_decl[vname].validate(value)
                else:
                    raise ConcretizationError(
                        f"package {name!r} has no variant {vname!r}"
                    )
            current.variants = VariantMap(validated)

            # effective view (explicit + defaults) for `when=` conditions
            effective = current.copy(deps=False)
            eff_variants = dict(current.variants.items())
            for vname, decl in recipe.variants_decl.items():
                if vname not in eff_variants:
                    eff_variants[vname] = decl.validate(decl.default)
            effective.variants = VariantMap(eff_variants)

            for depdecl in recipe.dependencies_decl:
                if not depdecl.active(effective):
                    continue
                dep_constraint = depdecl.spec.copy()
                dep_name = dep_constraint.name
                assert dep_name is not None
                if not self.repo.exists(dep_name) and self._providers_of(dep_name):
                    resolved = self._resolve_virtual(
                        dep_name, dep_constraint, hints=tuple(explicit)
                    )
                    dep_name = resolved.name
                    dep_constraint = resolved
                if (name, dep_name) not in edges:
                    edges.append((name, dep_name))
                work.append(dep_constraint)

            # fold in explicit ^deps that belong to this package
            if name in explicit:
                extra = explicit.pop(name)
                extra_flat = extra.copy(deps=False)
                work.append(extra_flat)

        # any explicit deps never reached become direct root edges (Spack
        # attaches unconnected ^specs to the root)
        for dep_name, dep in explicit.items():
            if not self.repo.exists(dep_name) and self._providers_of(dep_name):
                dep = self._resolve_virtual(dep_name, dep)
                dep_name = dep.name
            if (root.name, dep_name) not in edges:
                edges.append((root.name, dep_name))
            if dep_name in nodes:
                nodes[dep_name] = nodes[dep_name].constrain(dep.copy(deps=False))
            else:
                node = dep.copy(deps=False)
                node.variants = node.variants.merge(arch_map)
                # expand this node's own dependencies too
                sub_nodes, sub_edges = self._expand(node)
                for sn, sv in sub_nodes.items():
                    if sn in nodes:
                        nodes[sn] = nodes[sn].constrain(sv)
                    else:
                        nodes[sn] = sv
                for e in sub_edges:
                    if e not in edges:
                        edges.append(e)
        return nodes, edges

    # ------------------------------------------------------------- pinning --
    def _pin_all(self, nodes: Dict[str, Spec], root_name: str) -> None:
        for name, node in nodes.items():
            recipe = self._recipe(name)

            # now that all constraints are folded, fill in variant defaults
            filled = dict(node.variants.items())
            for vname, decl in recipe.variants_decl.items():
                if vname not in filled:
                    filled[vname] = decl.validate(decl.default)
            node.variants = VariantMap(filled)

            external = self.env.find_external(node)
            if external is not None:
                node.versions = VersionList([external.spec.version])
                node.external = True
            else:
                declared = recipe.available_versions()
                picked = node.versions.highest_of(declared)
                if picked is None:
                    raise ConcretizationError(
                        f"no declared version of {name} satisfies "
                        f"@{node.versions} (declared: "
                        f"{', '.join(str(v) for v in declared)})"
                    )
                # among equally-satisfying, prefer the recipe's preferred
                # version when it satisfies the constraint
                preferred = recipe.preferred_version()
                if node.versions.includes(preferred):
                    picked = preferred
                node.versions = VersionList([picked])
            node.namespace = self.repo.providing_repo(name)

    def _propagate_compiler(
        self,
        nodes: Dict[str, Spec],
        edges: List[Tuple[str, str]],
        root_name: str,
    ) -> None:
        root = nodes[root_name]
        if root.compiler is None:
            root.compiler = self.env.compilers.default().spec
        else:
            resolved = self.env.compilers.find(root.compiler)
            root.compiler = resolved.spec
        for name, node in nodes.items():
            if node.compiler is None:
                node.compiler = root.compiler.copy()
            else:
                node.compiler = self.env.compilers.find(node.compiler).spec

    # ------------------------------------------------------------ checking --
    def _check_conflicts(self, nodes: Dict[str, Spec]) -> None:
        for name, node in nodes.items():
            recipe = self._recipe(name)
            for decl in recipe.conflicts_decl:
                when_hits = decl.when is None or node.satisfies(decl.when)
                if when_hits and node.satisfies(decl.constraint):
                    msg = decl.msg or f"{decl.constraint} conflicts on {name}"
                    raise ConcretizationError(
                        f"conflict in {name}: {msg} "
                        f"(constraint {decl.constraint}"
                        + (f" when {decl.when}" if decl.when else "")
                        + ")"
                    )

    # ------------------------------------------------------------ assembly --
    def _assemble(
        self,
        nodes: Dict[str, Spec],
        edges: List[Tuple[str, str]],
        root_name: str,
    ) -> Spec:
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ConcretizationError(f"dependency cycle: {cycle}")
        # build bottom-up so children are attached before parents
        finished: Dict[str, Spec] = {}
        for name in nx.topological_sort(graph.reverse()):
            spec = nodes[name].copy(deps=False)
            spec.dependencies = {
                child: finished[child] for child in sorted(graph.successors(name))
            }
            finished[name] = spec
        return finished[root_name]

    def build_order(self, concrete: Spec) -> List[Spec]:
        """Install order: dependencies before dependents."""
        graph = nx.DiGraph()
        for node in concrete.traverse():
            graph.add_node(node.name, spec=node)
            for dep in node.dependencies.values():
                graph.add_edge(node.name, dep.name)
        order = list(nx.topological_sort(graph.reverse()))
        by_name = {s.name: s for s in concrete.traverse()}
        return [by_name[n] for n in order]


def concretize(
    spec: Spec | str,
    env: Optional[Environment] = None,
    repo: Optional[RepoPath] = None,
) -> Spec:
    """Module-level convenience wrapper over :class:`Concretizer`."""
    return Concretizer(repo=repo, env=env).concretize(spec)
