"""``repro-pkg``: a small Spack-like command line over the package manager.

Subcommands::

    repro-pkg list [glob]         list available recipes
    repro-pkg info <name>         show versions/variants/deps of a recipe
    repro-pkg spec <spec>         concretize and print the DAG
    repro-pkg install <spec>      concretize + simulated install (build log)
    repro-pkg providers <virt>    list providers of a virtual package

``--system NAME`` selects the environment of one of the configured systems
(see :mod:`repro.systems.registry`), so e.g.::

    repro-pkg spec --system archer2 'hpgmg%gcc'

prints the ARCHER2 row of the paper's Table 3.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import sys
from typing import List, Optional

from repro.pkgmgr.concretizer import ConcretizationError, Concretizer
from repro.pkgmgr.installer import BuildFailure, Installer
from repro.pkgmgr.repository import default_repo_path

__all__ = ["main", "build_parser"]


def _environment_for(system: Optional[str]):
    from repro.pkgmgr.environment import Environment

    if system is None:
        return Environment.basic("generic")
    from repro.systems.registry import system_environment

    return system_environment(system)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pkg", description="Spack-like package manager (simulated)"
    )
    parser.add_argument(
        "--system", help="use the named system's environment", default=None
    )
    parser.add_argument(
        "--store", default=os.environ.get("REPRO_STORE_MANIFEST",
                                          ".repro-store.json"),
        help="install-database manifest path (persists across invocations)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available recipes")
    p_list.add_argument("glob", nargs="?", default="*")

    p_info = sub.add_parser("info", help="describe one recipe")
    p_info.add_argument("name")

    p_spec = sub.add_parser("spec", help="concretize a spec")
    p_spec.add_argument("spec")

    p_install = sub.add_parser("install", help="concretize and (simulated) install")
    p_install.add_argument("spec")
    p_install.add_argument(
        "--no-rebuild",
        action="store_true",
        help="allow cached root (violates Principle 3; logged as such)",
    )

    p_prov = sub.add_parser("providers", help="providers of a virtual package")
    p_prov.add_argument("virtual")

    p_find = sub.add_parser(
        "find", help="list what an install command left in the store"
    )
    p_find.add_argument("spec", nargs="?", default=None,
                        help="optional constraint to filter by")

    p_lock = sub.add_parser(
        "lock", help="concretize a spec and print its lockfile JSON"
    )
    p_lock.add_argument("spec")

    p_env = sub.add_parser(
        "env", help="print a system environment (compilers, externals, "
                    "preferences) as the framework resolves it"
    )
    p_env.add_argument("name", nargs="?", default=None,
                       help="system name (defaults to --system)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    repo = default_repo_path()
    env = _environment_for(args.system)

    if args.command == "list":
        for name in repo.all_package_names():
            if fnmatch.fnmatch(name, args.glob):
                print(name)
        return 0

    if args.command == "info":
        try:
            recipe = repo.get(args.name)
        except Exception as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{recipe.name()}: {recipe.describe()}")
        print(f"  homepage: {recipe.homepage}")
        print(f"  build system: {recipe.build_system}")
        print("  versions: " + ", ".join(str(v) for v in recipe.available_versions()))
        if recipe.variants_decl:
            print("  variants:")
            for vname, decl in sorted(recipe.variants_decl.items()):
                print(f"    {vname} [default={decl.default!r}] {decl.description}")
        if recipe.dependencies_decl:
            print("  dependencies:")
            for dep in recipe.dependencies_decl:
                cond = f" when {dep.when}" if dep.when else ""
                print(f"    {dep.spec}{cond} ({','.join(dep.type)})")
        return 0

    if args.command == "env":
        target = args.name or args.system
        env = _environment_for(target)
        print(f"environment: {env.name}")
        print("compilers:")
        for comp in env.compilers:
            mods = f" (modules: {', '.join(comp.modules)})" if comp.modules else ""
            print(f"  {comp}{mods}")
        print("externals:")
        for ext in env.externals:
            print(f"  {ext.spec.format(deps=False)} @ {ext.prefix}")
        print("preferences:")
        for virt, pref in sorted(env.preferences.items()):
            print(f"  {virt} -> {pref}")
        print(f"arch: {env.arch}")
        return 0

    if args.command == "providers":
        conc = Concretizer(repo=repo, env=env)
        names = conc._providers_of(args.virtual)
        for n in names:
            print(n)
        return 0 if names else 1

    if args.command == "find":
        installer = Installer(repo=repo, manifest_path=args.store)
        constraint = args.spec
        shown = 0
        for record in installer.database.values():
            if constraint and not record.spec.satisfies(constraint):
                continue
            print(f"{record.spec.format(deps=False)} /{record.hash}  "
                  f"{record.prefix}")
            shown += 1
        if shown == 0:
            print("(no matching installs; `repro-pkg install <spec>` first)")
        return 0

    conc = Concretizer(repo=repo, env=env)
    try:
        concrete = conc.concretize(args.spec)
    except ConcretizationError as exc:
        print(f"concretization error: {exc}", file=sys.stderr)
        return 1

    if args.command == "spec":
        print(concrete.tree())
        return 0

    if args.command == "lock":
        print(env.lockfile_json())
        return 0

    if args.command == "install":
        installer = Installer(repo=repo, manifest_path=args.store)
        try:
            records = installer.install(concrete, rebuild=not args.no_rebuild)
        except BuildFailure as exc:
            print("\n".join(exc.log), file=sys.stderr)
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for record in records:
            for line in record.log:
                print(line)
        print(
            f"==> {len(records)} packages, "
            f"{installer.total_build_seconds:.0f} simulated build seconds"
        )
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
