"""Version semantics: dotted versions, ranges, and lists of ranges.

Implements the subset of Spack's version algebra the concretizer needs:

* :class:`Version` -- a dotted version (``11.2.0``), totally ordered, with
  numeric components compared numerically and alphanumeric suffixes
  lexicographically (``1.2rc1 < 1.2``  is *not* modelled; suffixes sort after
  the bare prefix, matching Spack's simple behaviour for the versions used in
  the paper: ``9.2.0``, ``10.3.0``, ``11.2.0``, ``2023.1.0`` ...).
* :class:`VersionRange` -- a closed interval ``lo:hi`` where either end may be
  open (``None``).  ``@1.2:`` means "1.2 or newer", ``@:1.2`` "1.2 or older".
  A bare version used as a constraint means *any version with that prefix*
  (``@11`` is satisfied by ``11.2.0``) as in Spack.
* :class:`VersionList` -- a union of versions/ranges (``@1.2,1.4:1.6``),
  supporting intersection, union, satisfaction, and emptiness tests which the
  concretizer uses to combine constraints from many dependents.
"""

from __future__ import annotations

import re
from functools import lru_cache, total_ordering
from typing import Iterable, Optional, Union

__all__ = ["Version", "VersionRange", "VersionList", "ver", "VersionError"]


class VersionError(ValueError):
    """Raised on malformed version strings or impossible version operations."""


_SEGMENT_RE = re.compile(r"(\d+|[a-zA-Z]+)")


@lru_cache(maxsize=4096)
def _parse_components(string: str) -> tuple:
    """Split ``'11.2.0rc1'`` into ``(11, 2, 0, 'rc', 1)``.

    Numeric runs become ints, alphabetic runs stay strings; separators
    (``.``, ``-``, ``_``) are discarded.  This mirrors Spack's tokenizer.

    Memoized: campaigns re-parse the same handful of version strings
    (``9.2.0``, ``11.2.0`` ...) thousands of times across cases, and the
    result tuple is immutable so sharing is safe.
    """
    if not string:
        raise VersionError("empty version string")
    if not re.fullmatch(r"[A-Za-z0-9._\-]+", string):
        raise VersionError(f"illegal characters in version: {string!r}")
    return tuple(
        int(tok) if tok.isdigit() else tok for tok in _SEGMENT_RE.findall(string)
    )


def _cmp_key(components: tuple) -> tuple:
    """Key making mixed int/str component tuples totally ordered.

    Ints sort before strings of the same rank so that ``1.2 < 1.2a < 1.10``
    holds component-wise; shorter tuples that are prefixes sort first
    (``1.2 < 1.2.0``), which matches Spack's ordering.
    """
    key = []
    for c in components:
        if isinstance(c, int):
            key.append((1, c, ""))
        else:
            key.append((2, 0, c))
    return tuple(key)


@total_ordering
class Version:
    """A single dotted version, e.g. ``Version('11.2.0')``.

    Versions are immutable, hashable, and totally ordered.  A version can act
    as a *constraint*, in which case it is satisfied by any version of which
    it is a dotted prefix: ``Version('11').satisfies_version(Version('11.2.0'))``.
    """

    __slots__ = ("string", "components", "_key")

    def __init__(self, string: Union[str, int, float, "Version"]):
        if isinstance(string, Version):
            string = string.string
        string = str(string)
        self.string = string
        self.components = _parse_components(string)
        self._key = _cmp_key(self.components)

    # -- ordering -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other: "Version") -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._key < other._key

    def __hash__(self) -> int:
        return hash(self.components)

    # -- prefix / constraint semantics ---------------------------------------
    def is_prefix_of(self, other: "Version") -> bool:
        """True if *self* is a dotted prefix of *other* (``11`` of ``11.2.0``)."""
        n = len(self.components)
        return other.components[:n] == self.components

    def satisfies(self, constraint: "VersionConstraint") -> bool:
        """True if this concrete version satisfies *constraint*."""
        if isinstance(constraint, Version):
            return constraint.is_prefix_of(self)
        return constraint.includes(self)

    def up_to(self, index: int) -> "Version":
        """Truncate: ``Version('11.2.0').up_to(2) == Version('11.2')``."""
        if index < 1:
            raise VersionError("up_to index must be >= 1")
        return Version(".".join(str(c) for c in self.components[:index]))

    @property
    def dotted(self) -> str:
        return self.string

    def __repr__(self) -> str:
        return f"Version('{self.string}')"

    def __str__(self) -> str:
        return self.string


class VersionRange:
    """A closed range ``lo:hi``; either bound may be ``None`` (open).

    The bounds use *prefix-inclusive* semantics on the high end as in Spack:
    ``:11`` admits ``11.2.0`` because ``11`` is a prefix of it.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[Version], hi: Optional[Version]):
        if lo is not None and not isinstance(lo, Version):
            lo = Version(lo)
        if hi is not None and not isinstance(hi, Version):
            hi = Version(hi)
        if lo is not None and hi is not None and hi < lo and not lo.is_prefix_of(hi):
            raise VersionError(f"backwards version range: {lo}:{hi}")
        self.lo = lo
        self.hi = hi

    def includes(self, v: Version) -> bool:
        if self.lo is not None and v < self.lo and not self.lo.is_prefix_of(v):
            return False
        if self.hi is not None and v > self.hi and not self.hi.is_prefix_of(v):
            return False
        return True

    def intersection(self, other: "VersionRange") -> Optional["VersionRange"]:
        """The overlapping range, or ``None`` if disjoint."""
        lo = self.lo
        if other.lo is not None and (lo is None or other.lo > lo):
            lo = other.lo
        hi = self.hi
        if other.hi is not None and (hi is None or other.hi < hi):
            hi = other.hi
        if lo is not None and hi is not None and hi < lo and not lo.is_prefix_of(hi):
            return None
        return VersionRange(lo, hi)

    def overlaps(self, other: "VersionRange") -> bool:
        return self.intersection(other) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionRange):
            return NotImplemented
        return (self.lo, self.hi) == (other.lo, other.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __str__(self) -> str:
        lo = self.lo.string if self.lo is not None else ""
        hi = self.hi.string if self.hi is not None else ""
        return f"{lo}:{hi}"

    def __repr__(self) -> str:
        return f"VersionRange({self})"


VersionConstraint = Union[Version, VersionRange]


def _parse_single(text: str) -> VersionConstraint:
    text = text.strip()
    if not text:
        raise VersionError("empty version constraint")
    if ":" in text:
        lo_s, _, hi_s = text.partition(":")
        lo = Version(lo_s) if lo_s else None
        hi = Version(hi_s) if hi_s else None
        return VersionRange(lo, hi)
    return Version(text)


class VersionList:
    """A union of version constraints, e.g. ``@1.2,1.4:1.6``.

    The concretizer folds every dependent's requirement into one
    ``VersionList`` per package via :meth:`intersect`; an empty result is a
    conflict.  An *empty constructor* yields the universal list ``:`` (any).
    """

    __slots__ = ("constraints", "_is_empty")

    def __init__(self, constraints: Iterable[Union[str, VersionConstraint]] = ()):
        parsed: list[VersionConstraint] = []
        for c in constraints:
            if isinstance(c, str):
                parsed.extend(_parse_single(part) for part in c.split(","))
            elif isinstance(c, (Version, VersionRange)):
                parsed.append(c)
            else:
                raise VersionError(f"bad version constraint: {c!r}")
        self.constraints = tuple(parsed)
        # no constraints at construction means "any"; only intersect() can
        # produce the unsatisfiable (empty) list
        self._is_empty = False

    @classmethod
    def parse(cls, text: str) -> "VersionList":
        """Parse the text after ``@`` in a spec: ``'1.2,1.4:1.6'``.

        Memoized (see :func:`_parse_versionlist`): version lists are
        treated as immutable throughout the codebase, so the shared
        instance is safe to hand out repeatedly.
        """
        if cls is VersionList:
            return _parse_versionlist(text)
        return cls([text])

    @property
    def is_any(self) -> bool:
        """True for the universal constraint (no restriction at all)."""
        if self._is_empty:
            return False
        if not self.constraints:
            return True
        return any(
            isinstance(c, VersionRange) and c.lo is None and c.hi is None
            for c in self.constraints
        )

    def includes(self, v: Version) -> bool:
        if self.is_any:
            return True
        return any(v.satisfies(c) for c in self.constraints)

    def _as_ranges(self) -> list[VersionRange]:
        out = []
        for c in self.constraints:
            if isinstance(c, Version):
                out.append(VersionRange(c, c))
            else:
                out.append(c)
        return out

    def intersect(self, other: "VersionList") -> "VersionList":
        """Combine two requirement sets; result admits only versions both admit.

        The pairwise range arithmetic is memoized per (self, other) pair in
        :func:`_intersect_lists` -- the concretizer folds the same few
        constraints into nodes once per *case*, which a campaign repeats
        hundreds of times.
        """
        if self.is_any:
            return other
        if other.is_any:
            return self
        return _intersect_lists(self, other)

    def _intersect_impl(self, other: "VersionList") -> "VersionList":
        pieces: list[VersionConstraint] = []
        for a in self._as_ranges():
            for b in other._as_ranges():
                both = a.intersection(b)
                if both is None:
                    continue
                if (
                    both.lo is not None
                    and both.hi is not None
                    and both.lo == both.hi
                ):
                    pieces.append(both.lo)
                else:
                    pieces.append(both)
        result = VersionList()
        # dedupe while keeping order
        seen = set()
        kept = []
        for p in pieces:
            key = str(p)
            if key not in seen:
                seen.add(key)
                kept.append(p)
        result.constraints = tuple(kept)
        result._is_empty = not kept
        return result

    @property
    def empty(self) -> bool:
        """True when no version can satisfy (a conflict)."""
        return self._is_empty

    def highest_of(self, candidates: Iterable[Version]) -> Optional[Version]:
        """Pick the highest candidate admitted by this list (Spack's policy)."""
        admitted = [v for v in candidates if self.includes(v)]
        return max(admitted) if admitted else None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionList):
            return NotImplemented
        return str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    def __str__(self) -> str:
        if self._is_empty:
            return "<none>"
        if self.is_any:
            return ":"
        return ",".join(str(c) for c in self.constraints)

    def __repr__(self) -> str:
        return f"VersionList('{self}')"


@lru_cache(maxsize=4096)
def _parse_versionlist(text: str) -> "VersionList":
    """Memoized ``VersionList([text])`` (hot in spec parsing)."""
    return VersionList([text])


@lru_cache(maxsize=8192)
def _intersect_lists(a: "VersionList", b: "VersionList") -> "VersionList":
    """Memoized pairwise intersection.

    ``VersionList`` hashes and compares by its canonical string, so equal
    renderings share one cached result.  Results are never mutated after
    creation, making the shared instance safe.
    """
    return a._intersect_impl(b)


def ver(text: Union[str, int, float]) -> Union[Version, VersionRange, VersionList]:
    """Convenience parser mirroring ``spack.version.ver``.

    ``ver('1.2')`` -> Version, ``ver('1.2:')`` -> VersionRange,
    ``ver('1.2,1.4')`` -> VersionList.
    """
    text = str(text)
    if "," in text:
        return VersionList.parse(text)
    return _parse_single(text)
