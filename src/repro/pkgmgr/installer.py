"""Simulated package installation with full provenance (Principles 3 & 4).

No compiler is invoked: :class:`Installer` walks the concrete DAG in build
order and produces, for every node, an :class:`InstallRecord` carrying the
build log, the install prefix, the dag hash, the (virtual) build duration
and the complete environment in which the "build" happened.  Re-installing
an unchanged spec is a cache hit -- unless ``rebuild=True``, the framework
default, because Principle 3 says *rebuild the benchmark every time it
runs*.  The record makes the trade explicit: you always know whether the
binary you ran was freshly reproduced.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.pkgmgr.repository import RepoPath, default_repo_path
from repro.pkgmgr.spec import Spec

__all__ = ["Installer", "InstallRecord", "BuildFailure"]


class BuildFailure(Exception):
    """Raised when a (simulated) build step fails."""

    def __init__(self, spec: Spec, log: List[str], reason: str):
        super().__init__(f"build of {spec.format(deps=False)} failed: {reason}")
        self.spec = spec
        self.log = log
        self.reason = reason


class InstallRecord:
    """Provenance of one installed package."""

    __slots__ = (
        "spec",
        "prefix",
        "hash",
        "log",
        "build_seconds",
        "external",
        "timestamp",
        "fresh",
    )

    def __init__(
        self,
        spec: Spec,
        prefix: str,
        log: List[str],
        build_seconds: float,
        external: bool,
        fresh: bool,
    ):
        self.spec = spec
        self.prefix = prefix
        self.hash = spec.dag_hash()
        self.log = log
        self.build_seconds = build_seconds
        self.external = external
        self.fresh = fresh
        self.timestamp = time.time()

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.format(),
            "hash": self.hash,
            "prefix": self.prefix,
            "build_seconds": self.build_seconds,
            "external": self.external,
            "fresh": self.fresh,
        }

    def __repr__(self) -> str:
        kind = "external" if self.external else ("fresh" if self.fresh else "cached")
        return f"InstallRecord({self.spec.format(deps=False)} [{kind}])"


class Installer:
    """Builds concrete specs into a (virtual) install tree."""

    def __init__(
        self,
        repo: Optional[RepoPath] = None,
        store_root: str = "/opt/repro-store",
        fail_hook: Optional[Callable[[Spec], Optional[str]]] = None,
        manifest_path: Optional[str] = None,
    ):
        self.repo = repo or default_repo_path()
        self.store_root = store_root.rstrip("/")
        #: dag hash -> record; the installed database
        self.database: Dict[str, InstallRecord] = {}
        #: optional failure injector for tests: spec -> error message or None
        self.fail_hook = fail_hook
        #: total simulated build seconds spent (the paper's FTE argument)
        self.total_build_seconds = 0.0
        #: when set, the database persists here across Installer lifetimes
        #: (what lets `repro-pkg install` then `repro-pkg find` cooperate)
        self.manifest_path = manifest_path
        #: serializes installs when one Installer is shared by the async
        #: execution policy's worker pool (repro.runner.parallel); the
        #: simulated builds are cheap, so contention is negligible while
        #: the database and build-time accounting stay consistent
        self._lock = threading.RLock()
        if manifest_path and os.path.exists(manifest_path):
            self._load_manifest()

    # -- persistence ----------------------------------------------------------
    def _load_manifest(self) -> None:
        with open(self.manifest_path, encoding="utf-8") as fh:
            doc = json.load(fh)
        for entry in doc.get("installs", []):
            spec = Spec.from_dict(entry["spec_dag"])
            spec.mark_concrete()
            record = InstallRecord(
                spec=spec,
                prefix=entry["prefix"],
                log=entry.get("log", []),
                build_seconds=entry.get("build_seconds", 0.0),
                external=entry.get("external", False),
                fresh=False,
            )
            self.database[spec.dag_hash()] = record

    def save_manifest(self) -> None:
        if not self.manifest_path:
            return
        doc = {
            "installs": [
                {
                    "spec": r.spec.format(),
                    "spec_dag": r.spec.dag_dict(),
                    "prefix": r.prefix,
                    "build_seconds": r.build_seconds,
                    "external": r.external,
                    "log": r.log[-3:],
                }
                for r in self.database.values()
            ]
        }
        directory = os.path.dirname(self.manifest_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)

    def prefix_for(self, spec: Spec) -> str:
        return (
            f"{self.store_root}/{spec.name}-{spec.version}-{spec.dag_hash()}"
        )

    def is_installed(self, spec: Spec) -> bool:
        return spec.dag_hash() in self.database

    def install(self, concrete: Spec, rebuild: bool = True) -> List[InstallRecord]:
        """Install a concrete DAG; returns records in build order.

        ``rebuild=True`` (the framework default, Principle 3) rebuilds the
        *root* even when cached; dependencies are reused when already
        installed, as Spack does.
        """
        if not concrete.concrete:
            raise ValueError(f"cannot install abstract spec {concrete}")
        from repro.pkgmgr.concretizer import Concretizer

        order = Concretizer(repo=self.repo).build_order(concrete)
        with self._lock:
            records = []
            for node in order:
                is_root = node.name == concrete.name
                force = rebuild and is_root
                records.append(self._install_one(node, force=force))
            self.save_manifest()
            return records

    def _install_one(self, spec: Spec, force: bool) -> InstallRecord:
        h = spec.dag_hash()
        if spec.external:
            record = InstallRecord(
                spec,
                prefix=f"/usr/system/{spec.name}",
                log=[f"==> {spec.format(deps=False)} is external, not building"],
                build_seconds=0.0,
                external=True,
                fresh=False,
            )
            self.database[h] = record
            return record
        if h in self.database and not force:
            cached = self.database[h]
            return InstallRecord(
                spec,
                prefix=cached.prefix,
                log=[f"==> {spec.format(deps=False)} already installed"],
                build_seconds=0.0,
                external=False,
                fresh=False,
            )
        recipe_cls = self.repo.get(spec.name)
        recipe = recipe_cls(spec)
        log: List[str] = []
        if self.fail_hook is not None:
            reason = self.fail_hook(spec)
            if reason:
                log.append(f"==> Error: {reason}")
                raise BuildFailure(spec, log, reason)
        prefix = self.prefix_for(spec)
        recipe.install(prefix, log.append)
        seconds = recipe.build_time_estimate()
        self.total_build_seconds += seconds
        record = InstallRecord(
            spec,
            prefix=prefix,
            log=log,
            build_seconds=seconds,
            external=False,
            fresh=True,
        )
        self.database[h] = record
        return record
