"""Spack-like package manager substrate.

The paper (Principle 2--4) drives all benchmark builds through Spack so that
the *knowledge of how to build a code on a platform* is captured in package
recipes and the concretized dependency DAG is archaeologically reproducible.
This subpackage is a from-scratch reimplementation of the Spack concepts the
paper relies on:

* :mod:`repro.pkgmgr.version` -- version ordering and range algebra,
* :mod:`repro.pkgmgr.spec` -- the spec grammar (``hpgmg%gcc@11.2.0 +omp ^openmpi``),
* :mod:`repro.pkgmgr.variant` -- build variants,
* :mod:`repro.pkgmgr.package` -- the recipe API (``depends_on``, ``variant``, ...),
* :mod:`repro.pkgmgr.repository` -- recipe repositories (builtin + custom),
* :mod:`repro.pkgmgr.concretizer` -- the dependency solver,
* :mod:`repro.pkgmgr.memo` -- content-addressed memoization of solutions,
* :mod:`repro.pkgmgr.environment` -- per-system environments (externals, compilers),
* :mod:`repro.pkgmgr.installer` -- simulated builds with provenance.

Builds are *simulated*: no compiler runs, but every step that Spack would
record (concretized spec, dependency hashes, build log) is produced, which is
what the paper's reproducibility claims rest on.
"""

from repro.pkgmgr.version import Version, VersionRange, VersionList, ver
from repro.pkgmgr.spec import Spec, SpecParseError
from repro.pkgmgr.variant import Variant, VariantMap, VariantError
from repro.pkgmgr.package import PackageBase, PackageError
from repro.pkgmgr.repository import Repository, RepoPath, builtin_repo
from repro.pkgmgr.concretizer import Concretizer, ConcretizationError, concretize
from repro.pkgmgr.memo import CacheStats, ConcretizationCache, MemoizedFailure
from repro.pkgmgr.compilers import Compiler, CompilerRegistry
from repro.pkgmgr.environment import Environment
from repro.pkgmgr.installer import Installer, InstallRecord, BuildFailure

__all__ = [
    "Version",
    "VersionRange",
    "VersionList",
    "ver",
    "Spec",
    "SpecParseError",
    "Variant",
    "VariantMap",
    "VariantError",
    "PackageBase",
    "PackageError",
    "Repository",
    "RepoPath",
    "builtin_repo",
    "Concretizer",
    "ConcretizationError",
    "concretize",
    "CacheStats",
    "ConcretizationCache",
    "MemoizedFailure",
    "Compiler",
    "CompilerRegistry",
    "Environment",
    "Installer",
    "InstallRecord",
    "BuildFailure",
]
