"""The spec grammar: parse and manipulate ``name@ver%compiler+variant ^dep``.

Specs are the lingua franca of the framework, exactly as in the paper where
benchmark builds are requested as e.g.::

    babelstream%gcc@9.2.0 +omp
    hpgmg%gcc

Grammar (a faithful subset of Spack's)::

    spec       := [name] clause* dep*
    clause     := '@' versions | '%' compiler | '+'name | '~'name | '-'name
                | name '=' value
    compiler   := name ['@' versions]
    dep        := '^' spec

A spec starts *abstract* (partially constrained) and is turned *concrete*
(every choice pinned) by the concretizer.  Concrete specs have a content
hash used for installation provenance (Principle 4).
"""

from __future__ import annotations

import hashlib
import json
import re
from functools import lru_cache
from typing import Any, Dict, Iterator, List, Optional

from repro.pkgmgr.variant import VariantMap, VariantError
from repro.pkgmgr.version import Version, VersionList

__all__ = ["Spec", "SpecParseError", "CompilerSpec", "parse_spec"]


class SpecParseError(ValueError):
    """Raised when a spec string cannot be parsed."""


_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.\-]*")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<dep>\^)
  | (?P<at>@[A-Za-z0-9_.,:\-]+)   # '@' plus its version constraint text
  | (?P<pct>%)
  | (?P<plus>\+)
  | (?P<tilde>[~\-])
  | (?P<kv>[A-Za-z0-9][A-Za-z0-9_\-]*=[^\s^%+~]+)
  | (?P<name>[A-Za-z0-9][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)


class CompilerSpec:
    """A compiler constraint: name plus optional version constraint."""

    __slots__ = ("name", "versions")

    def __init__(self, name: str, versions: Optional[VersionList] = None):
        self.name = name
        self.versions = versions if versions is not None else VersionList()

    @property
    def version(self) -> Optional[Version]:
        """The pinned version if exactly one concrete version, else None."""
        cs = self.versions.constraints
        if len(cs) == 1 and isinstance(cs[0], Version):
            return cs[0]
        return None

    def satisfies(self, other: "CompilerSpec") -> bool:
        if self.name != other.name:
            return False
        if other.versions.is_any:
            return True
        v = self.version
        if v is not None:
            return other.versions.includes(v)
        # both abstract: require non-empty intersection
        return not self.versions.intersect(other.versions).empty

    def copy(self) -> "CompilerSpec":
        c = CompilerSpec(self.name)
        c.versions = self.versions
        return c

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompilerSpec):
            return NotImplemented
        return self.name == other.name and str(self.versions) == str(other.versions)

    def __hash__(self) -> int:
        return hash((self.name, str(self.versions)))

    def __str__(self) -> str:
        if self.versions.is_any:
            return self.name
        return f"{self.name}@{self.versions}"

    def __repr__(self) -> str:
        return f"CompilerSpec('{self}')"


class Spec:
    """A package constraint or a concrete build configuration.

    Attributes
    ----------
    name:
        Package name; may be ``None`` for anonymous constraint specs
        (e.g. ``%gcc@11`` applied to everything in an environment).
    versions:
        A :class:`~repro.pkgmgr.version.VersionList` constraint.
    compiler:
        Optional :class:`CompilerSpec`.
    variants:
        A :class:`~repro.pkgmgr.variant.VariantMap`.
    dependencies:
        Mapping ``name -> Spec`` of direct dependency constraints
        (the ``^`` edges).
    external:
        Set by the concretizer when the package is provided by the system
        (recorded in the environment's packages config), mirroring Spack
        externals; external specs are not rebuilt (Principle 4: reuse the
        system default environment where configured).
    """

    def __init__(self, spec_like: Any = None):
        self.name: Optional[str] = None
        self.versions: VersionList = VersionList()
        self.compiler: Optional[CompilerSpec] = None
        self.variants: VariantMap = VariantMap()
        self.dependencies: Dict[str, "Spec"] = {}
        self.external: bool = False
        self.namespace: Optional[str] = None
        self._concrete: bool = False
        if spec_like is None:
            return
        if isinstance(spec_like, Spec):
            other = spec_like.copy()
            self.__dict__.update(other.__dict__)
            return
        if isinstance(spec_like, str):
            parsed = parse_spec(spec_like)
            self.__dict__.update(parsed.__dict__)
            return
        raise SpecParseError(f"cannot build a Spec from {spec_like!r}")

    # -- basic accessors ------------------------------------------------------
    @property
    def version(self) -> Version:
        """The concrete version; raises unless exactly one version is pinned."""
        cs = self.versions.constraints
        if len(cs) == 1 and isinstance(cs[0], Version):
            return cs[0]
        raise SpecParseError(f"spec {self} has no concrete version")

    @property
    def concrete(self) -> bool:
        return self._concrete

    def mark_concrete(self) -> None:
        """Seal the spec after concretization (also seals dependencies)."""
        for dep in self.dependencies.values():
            if not dep._concrete:
                dep.mark_concrete()
        self._concrete = True

    # -- construction ----------------------------------------------------------
    def copy(self, deps: bool = True) -> "Spec":
        s = Spec()
        s.name = self.name
        s.versions = self.versions
        s.compiler = self.compiler.copy() if self.compiler else None
        s.variants = self.variants.copy()
        s.external = self.external
        s.namespace = self.namespace
        s._concrete = self._concrete
        if deps:
            s.dependencies = {n: d.copy() for n, d in self.dependencies.items()}
        return s

    def constrain(self, other: "Spec") -> "Spec":
        """Merge *other*'s constraints into a copy of self.

        Raises on contradiction (disjoint versions, clashing variants or
        compiler names).  This is the core operation the concretizer uses to
        fold many dependents' requirements into one node.
        """
        if self._concrete:
            raise SpecParseError(f"cannot constrain concrete spec {self}")
        if other.name is not None and self.name is not None and other.name != self.name:
            raise SpecParseError(
                f"cannot constrain {self.name!r} with spec for {other.name!r}"
            )
        out = self.copy()
        if out.name is None:
            out.name = other.name
        merged_versions = out.versions.intersect(other.versions)
        if merged_versions.empty:
            raise SpecParseError(
                f"conflicting version constraints on {out.name}: "
                f"{out.versions} vs {other.versions}"
            )
        out.versions = merged_versions
        if other.compiler is not None:
            if out.compiler is None:
                out.compiler = other.compiler.copy()
            else:
                if out.compiler.name != other.compiler.name:
                    raise SpecParseError(
                        f"conflicting compilers on {out.name}: "
                        f"{out.compiler} vs {other.compiler}"
                    )
                merged = out.compiler.versions.intersect(other.compiler.versions)
                if merged.empty:
                    raise SpecParseError(
                        f"conflicting compiler versions on {out.name}: "
                        f"{out.compiler} vs {other.compiler}"
                    )
                out.compiler.versions = merged
        out.variants = out.variants.merge(other.variants)
        for dep_name, dep_spec in other.dependencies.items():
            if dep_name in out.dependencies:
                out.dependencies[dep_name] = out.dependencies[dep_name].constrain(
                    dep_spec
                )
            else:
                out.dependencies[dep_name] = dep_spec.copy()
        return out

    # -- satisfaction ----------------------------------------------------------
    def satisfies(self, other: Any) -> bool:
        """True when self meets every constraint *other* expresses.

        *other* may be a spec string.  Anonymous constraints (no name) match
        any package.  This is the asymmetric Spack relation used for
        ``conflicts``, ``depends_on(..., when=...)`` and external matching.
        """
        if isinstance(other, str):
            other = parse_spec(other)
        if other.name is not None and self.name != other.name:
            return False
        if not other.versions.is_any:
            cs = self.versions.constraints
            if len(cs) == 1 and isinstance(cs[0], Version):
                if not other.versions.includes(cs[0]):
                    return False
            else:
                if self.versions.intersect(other.versions).empty:
                    return False
        if other.compiler is not None:
            if self.compiler is None:
                return False
            if not self.compiler.satisfies(other.compiler):
                return False
        if not self.variants.satisfies(other.variants):
            return False
        for dep_name, dep_constraint in other.dependencies.items():
            mine = self._find_dep(dep_name)
            if mine is None or not mine.satisfies(dep_constraint):
                return False
        return True

    def _find_dep(self, name: str) -> Optional["Spec"]:
        """Find a dependency anywhere in the DAG (transitively)."""
        for spec in self.traverse():
            if spec is not self and spec.name == name:
                return spec
        return None

    # -- traversal --------------------------------------------------------------
    def traverse(self, *, order: str = "pre") -> Iterator["Spec"]:
        """Yield self and all transitive dependencies (deduplicated by name)."""
        seen: set[str] = set()

        def walk(node: "Spec") -> Iterator["Spec"]:
            key = node.name or id(node)
            if key in seen:
                return
            seen.add(key)  # type: ignore[arg-type]
            if order == "pre":
                yield node
            for dep_name in sorted(node.dependencies):
                yield from walk(node.dependencies[dep_name])
            if order == "post":
                yield node

        return walk(self)

    def __getitem__(self, name: str) -> "Spec":
        """Look up a package in the DAG by name: ``spec['openmpi']``."""
        if self.name == name:
            return self
        found = self._find_dep(name)
        if found is None:
            raise KeyError(f"no package {name!r} in spec {self}")
        return found

    def __contains__(self, name: str) -> bool:
        if self.name == name:
            return True
        return self._find_dep(name) is not None

    # -- hashing / provenance -----------------------------------------------------
    def dag_dict(self) -> dict:
        """A JSON-able description of the full DAG (the lockfile entry)."""
        return {
            "name": self.name,
            "version": str(self.versions),
            "compiler": str(self.compiler) if self.compiler else None,
            "variants": {k: v for k, v in self.variants.items()},
            "external": self.external,
            "dependencies": {
                n: d.dag_dict() for n, d in sorted(self.dependencies.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Spec":
        """Rebuild a spec from :meth:`dag_dict` output (lockfile loading).

        Round-trips concrete specs exactly (same dag hash), which is what
        makes provenance records *actionable*: a recorded build can be
        reinstated, not just read.
        """
        spec = cls()
        spec.name = doc.get("name")
        version_text = doc.get("version", ":")
        if version_text and version_text != ":":
            spec.versions = VersionList.parse(version_text)
        compiler_text = doc.get("compiler")
        if compiler_text:
            cname, _, cver = compiler_text.partition("@")
            spec.compiler = CompilerSpec(
                cname, VersionList.parse(cver) if cver else None
            )
        variants = {}
        for key, value in (doc.get("variants") or {}).items():
            if isinstance(value, list):
                value = tuple(value)
            variants[key] = value
        spec.variants = VariantMap(variants)
        spec.external = bool(doc.get("external", False))
        for dep_name, dep_doc in (doc.get("dependencies") or {}).items():
            spec.dependencies[dep_name] = cls.from_dict(dep_doc)
        return spec

    def dag_hash(self, length: int = 7) -> str:
        """Content hash of the concrete DAG, as Spack prints (``/abcdefg``)."""
        blob = json.dumps(self.dag_dict(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:length]

    # -- rendering -----------------------------------------------------------------
    def format(self, *, deps: bool = True, hashes: bool = False) -> str:
        parts = [self.name or ""]
        if not self.versions.is_any:
            parts.append(f"@{self.versions}")
        if self.compiler is not None:
            parts.append(f"%{self.compiler}")
        vstr = str(self.variants)
        if vstr:
            parts.append(f" {vstr}")
        if hashes and self._concrete:
            parts.append(f" /{self.dag_hash()}")
        text = "".join(parts).strip()
        if deps:
            for dep_name in sorted(self.dependencies):
                dep = self.dependencies[dep_name]
                text += f" ^{dep.format(deps=False, hashes=hashes)}"
        return text

    def tree(self, indent: int = 0) -> str:
        """An indented multi-line rendering like ``spack spec``."""
        lines = [" " * indent + self.format(deps=False, hashes=True)]
        for dep_name in sorted(self.dependencies):
            lines.append(self.dependencies[dep_name].tree(indent + 4))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return f"Spec('{self.format()}')"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Spec):
            return NotImplemented
        return self.dag_dict() == other.dag_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.dag_dict(), sort_keys=True, default=str))


def parse_spec(text: str) -> Spec:
    """Parse a spec string into a :class:`Spec` (possibly anonymous).

    Parsing is memoized per string (:func:`_parse_spec_cached`): a campaign
    re-parses the same ``spack_spec`` / constraint strings once per case,
    and tokenization dominates.  Because :class:`Spec` is mutable, callers
    receive a :meth:`Spec.copy` of the cached parse, never the cached
    object itself.
    """
    if not isinstance(text, str):
        raise SpecParseError(f"expected str, got {type(text).__name__}")
    return _parse_spec_cached(text).copy()


@lru_cache(maxsize=2048)
def _parse_spec_cached(text: str) -> Spec:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SpecParseError(f"bad character at {pos} in spec: {text!r}")
        kind = m.lastgroup
        if kind != "ws":
            tokens.append((kind, m.group()))
        pos = m.end()

    root = Spec()
    current = root
    stack: List[Spec] = []
    i = 0

    def expect_name(context: str) -> str:
        nonlocal i
        if i >= len(tokens) or tokens[i][0] != "name":
            raise SpecParseError(f"expected name after {context} in {text!r}")
        value = tokens[i][1]
        i += 1
        return value

    while i < len(tokens):
        kind, value = tokens[i]
        if kind == "name":
            if current.name is not None:
                raise SpecParseError(
                    f"unexpected second package name {value!r} in {text!r}"
                )
            current.name = value
            i += 1
        elif kind == "at":
            try:
                vlist = VersionList.parse(value[1:])
            except Exception as exc:
                raise SpecParseError(f"bad version in {text!r}: {exc}") from exc
            current.versions = current.versions.intersect(vlist)
            if current.versions.empty:
                raise SpecParseError(f"contradictory versions in {text!r}")
            i += 1
        elif kind == "pct":
            i += 1
            cname = expect_name("'%'")
            compiler = CompilerSpec(cname)
            if i < len(tokens) and tokens[i][0] == "at":
                compiler.versions = VersionList.parse(tokens[i][1][1:])
                i += 1
            if current.compiler is not None:
                raise SpecParseError(f"two compilers in one spec: {text!r}")
            current.compiler = compiler
        elif kind == "plus":
            i += 1
            vname = expect_name("'+'")
            current.variants = current.variants.merge(VariantMap({vname: True}))
        elif kind == "tilde":
            i += 1
            vname = expect_name("'~'")
            current.variants = current.variants.merge(VariantMap({vname: False}))
        elif kind == "kv":
            key, _, val = value.partition("=")
            if "," in val:
                current.variants = current.variants.merge(
                    VariantMap({key: tuple(sorted(val.split(",")))})
                )
            else:
                current.variants = current.variants.merge(VariantMap({key: val}))
            i += 1
        elif kind == "dep":
            i += 1
            dep = Spec()
            stack.append(current)
            current = dep
        else:  # pragma: no cover - the tokenizer admits nothing else
            raise SpecParseError(f"unexpected token {value!r} in {text!r}")

        # close a dependency scope when the next token starts a new dep or ends
        if stack and (i >= len(tokens) or tokens[i][0] == "dep"):
            dep = current
            if dep.name is None:
                raise SpecParseError(f"dependency without a name in {text!r}")
            parent = stack.pop()
            if dep.name in parent.dependencies:
                parent.dependencies[dep.name] = parent.dependencies[
                    dep.name
                ].constrain(dep)
            else:
                parent.dependencies[dep.name] = dep
            current = parent

    return root
