"""The package recipe API (Principle 2: teach the build system).

A recipe is a class deriving from :class:`PackageBase` using the declarative
directives ``version``, ``variant``, ``depends_on`` and ``conflicts`` --
the same vocabulary as a Spack ``package.py``::

    class Babelstream(PackageBase):
        '''Memory bandwidth benchmark in many programming models.'''

        homepage = "https://github.com/UoB-HPC/BabelStream"

        version("4.0")
        version("3.4")
        variant("omp", default=False, description="Build OpenMP variant")
        depends_on("cmake@3.13:", type="build")
        conflicts("+cuda", when="%gcc", msg="CUDA variant needs nvcc")

The directives record structured metadata on the class; the concretizer
reads it to solve the DAG.  ``install()`` describes the (simulated) build,
used by :mod:`repro.pkgmgr.installer` to produce build logs and provenance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.pkgmgr.spec import Spec, parse_spec
from repro.pkgmgr.variant import Variant
from repro.pkgmgr.version import Version

__all__ = [
    "PackageBase",
    "PackageError",
    "DependencySpec",
    "VersionDecl",
    "ConflictDecl",
]


class PackageError(Exception):
    """Raised for malformed recipes or recipe-level build failures."""


class VersionDecl:
    """One ``version(...)`` directive: a buildable version plus metadata."""

    __slots__ = ("version", "preferred", "deprecated")

    def __init__(self, version: Version, preferred: bool, deprecated: bool):
        self.version = version
        self.preferred = preferred
        self.deprecated = deprecated


class DependencySpec:
    """One ``depends_on(...)`` directive.

    ``when`` makes the dependency conditional on the dependent's final
    configuration (e.g. only ``+mpi`` builds need an MPI library).
    ``type`` distinguishes build-only tools (cmake) from link/run deps;
    the paper's Table 3 lists both kinds for HPGMG.
    """

    __slots__ = ("spec", "when", "type")

    def __init__(self, spec: Spec, when: Optional[Spec], type: Tuple[str, ...]):
        self.spec = spec
        self.when = when
        self.type = type

    def active(self, on: Spec) -> bool:
        return self.when is None or on.satisfies(self.when)


class ConflictDecl:
    """One ``conflicts(...)`` directive: configurations that must not occur."""

    __slots__ = ("constraint", "when", "msg")

    def __init__(self, constraint: Spec, when: Optional[Spec], msg: str):
        self.constraint = constraint
        self.when = when
        self.msg = msg


def _to_type_tuple(type_) -> Tuple[str, ...]:
    if type_ is None:
        return ("build", "link")
    if isinstance(type_, str):
        return (type_,)
    return tuple(type_)


class _DirectiveMeta(type):
    """Metaclass giving each recipe class its own directive storage.

    Directives are module-level functions in Spack; here they are
    classmethods populated at class-body execution time through a staging
    area, keeping recipes byte-for-byte similar to Spack's.
    """

    _staging: List[Tuple[str, tuple, dict]] = []

    def __new__(mcs, name, bases, namespace):
        cls = super().__new__(mcs, name, bases, namespace)
        cls.versions_decl: Dict[Version, VersionDecl] = {}
        cls.variants_decl: Dict[str, Variant] = {}
        cls.dependencies_decl: List[DependencySpec] = []
        cls.conflicts_decl: List[ConflictDecl] = []
        cls.provides_decl: List[str] = []
        # inherit parents' directives (Spack does this for base packages)
        for base in bases:
            cls.versions_decl.update(getattr(base, "versions_decl", {}))
            cls.variants_decl.update(getattr(base, "variants_decl", {}))
            cls.dependencies_decl.extend(getattr(base, "dependencies_decl", []))
            cls.conflicts_decl.extend(getattr(base, "conflicts_decl", []))
            cls.provides_decl.extend(getattr(base, "provides_decl", []))
        for directive, args, kwargs in _DirectiveMeta._staging:
            getattr(cls, "_apply_" + directive)(args, kwargs)
        _DirectiveMeta._staging = []
        return cls


def version(ver: str, preferred: bool = False, deprecated: bool = False) -> None:
    """Declare a buildable version inside a recipe class body."""
    _DirectiveMeta._staging.append(("version", (ver,), dict(preferred=preferred, deprecated=deprecated)))


def variant(
    name: str,
    default=False,
    description: str = "",
    values=(True, False),
    multi: bool = False,
) -> None:
    """Declare a variant inside a recipe class body."""
    _DirectiveMeta._staging.append(
        ("variant", (name,), dict(default=default, description=description, values=values, multi=multi))
    )


def depends_on(spec: str, when: Optional[str] = None, type=None) -> None:
    """Declare a dependency inside a recipe class body."""
    _DirectiveMeta._staging.append(("depends_on", (spec,), dict(when=when, type=type)))


def conflicts(constraint: str, when: Optional[str] = None, msg: str = "") -> None:
    """Declare a conflict inside a recipe class body."""
    _DirectiveMeta._staging.append(("conflicts", (constraint,), dict(when=when, msg=msg)))


def provides(virtual: str) -> None:
    """Declare that this package provides a virtual package (e.g. ``mpi``)."""
    _DirectiveMeta._staging.append(("provides", (virtual,), {}))


class PackageBase(metaclass=_DirectiveMeta):
    """Base class for all package recipes.

    Subclasses use the module-level directives and may override
    :meth:`install` (the simulated build script), :meth:`build_time_estimate`
    and :meth:`cmake_args`.
    """

    #: URL of the upstream project, for documentation.
    homepage: str = ""
    #: Human description; first docstring line is used if empty.
    description: str = ""
    #: Build system label ('cmake', 'autotools', 'makefile', 'python').
    build_system: str = "cmake"

    versions_decl: Dict[Version, VersionDecl]
    variants_decl: Dict[str, Variant]
    dependencies_decl: List[DependencySpec]
    conflicts_decl: List[ConflictDecl]

    def __init__(self, spec: Spec):
        if spec.name != self.name():
            raise PackageError(
                f"recipe {self.name()!r} instantiated with spec for {spec.name!r}"
            )
        self.spec = spec

    # -- directive appliers (invoked by the metaclass) ---------------------------
    @classmethod
    def _apply_version(cls, args, kwargs) -> None:
        v = Version(args[0])
        cls.versions_decl[v] = VersionDecl(v, kwargs["preferred"], kwargs["deprecated"])

    @classmethod
    def _apply_variant(cls, args, kwargs) -> None:
        cls.variants_decl[args[0]] = Variant(args[0], **kwargs)

    @classmethod
    def _apply_depends_on(cls, args, kwargs) -> None:
        dep = parse_spec(args[0])
        if dep.name is None:
            raise PackageError(f"depends_on needs a package name: {args[0]!r}")
        when = parse_spec(kwargs["when"]) if kwargs["when"] else None
        cls.dependencies_decl.append(
            DependencySpec(dep, when, _to_type_tuple(kwargs["type"]))
        )

    @classmethod
    def _apply_conflicts(cls, args, kwargs) -> None:
        constraint = parse_spec(args[0])
        when = parse_spec(kwargs["when"]) if kwargs["when"] else None
        cls.conflicts_decl.append(ConflictDecl(constraint, when, kwargs["msg"]))

    @classmethod
    def _apply_provides(cls, args, kwargs) -> None:
        cls.provides_decl.append(args[0])

    # -- introspection --------------------------------------------------------------
    @classmethod
    def name(cls) -> str:
        """Package name: CamelCase class name -> kebab-case (Spack convention)."""
        out = []
        for i, ch in enumerate(cls.__name__):
            if ch.isupper() and i > 0:
                out.append("-")
            out.append(ch.lower())
        return "".join(out).replace("_", "-")

    @classmethod
    def available_versions(cls) -> List[Version]:
        """All declared versions, newest first, non-deprecated preferred."""
        return sorted(cls.versions_decl, reverse=True)

    @classmethod
    def preferred_version(cls) -> Version:
        if not cls.versions_decl:
            raise PackageError(f"recipe {cls.name()!r} declares no versions")
        preferred = [v for v, d in cls.versions_decl.items() if d.preferred]
        if preferred:
            return max(preferred)
        ok = [v for v, d in cls.versions_decl.items() if not d.deprecated]
        return max(ok or cls.versions_decl)

    @classmethod
    def describe(cls) -> str:
        if cls.description:
            return cls.description
        if cls.__doc__:
            return cls.__doc__.strip().splitlines()[0]
        return ""

    # -- simulated build -----------------------------------------------------------
    def cmake_args(self) -> List[str]:
        """Extra configure arguments derived from the spec; override in recipes."""
        return []

    def build_time_estimate(self) -> float:
        """Simulated wall-clock seconds the build takes (used by the installer)."""
        return 30.0

    def install(self, prefix: str, log: Callable[[str], None]) -> None:
        """Simulated install: emit a realistic build log.

        Override for packages needing custom steps.  The default models a
        configure/build/install sequence for :attr:`build_system`.
        """
        spec = self.spec
        log(f"==> Installing {spec.format(deps=False)}")
        if self.build_system == "cmake":
            args = " ".join(self.cmake_args())
            log(f"==> cmake -DCMAKE_INSTALL_PREFIX={prefix} {args}".rstrip())
            log("==> cmake --build . -j")
        elif self.build_system == "autotools":
            log(f"==> ./configure --prefix={prefix}")
            log("==> make -j && make install")
        elif self.build_system == "python":
            log(f"==> python -m pip install --prefix={prefix} .")
        else:
            log(f"==> make PREFIX={prefix} install")
        log(f"==> Successfully installed {spec.format(deps=False)}")
