"""Recipe repositories.

Spack ships a large builtin repository of recipes and lets sites keep custom
repositories for local packages ("we keep a local repository of recipes for
building applications not generally relevant for upstream Spack" -- paper,
Section 2.2).  :class:`Repository` holds recipes under a namespace;
:class:`RepoPath` resolves names across an ordered list of repositories,
custom ones shadowing builtin ones.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Dict, Iterator, List, Optional, Type

from repro.pkgmgr.package import PackageBase, PackageError

__all__ = ["Repository", "RepoPath", "builtin_repo", "UnknownPackageError"]


class UnknownPackageError(PackageError):
    """Raised when no repository provides a recipe for the requested name."""

    def __init__(self, name: str, repos: List[str]):
        super().__init__(
            f"no recipe for package {name!r} in repositories {', '.join(repos)}"
        )
        self.package_name = name


class Repository:
    """A named collection of package recipes."""

    def __init__(self, namespace: str):
        self.namespace = namespace
        self._recipes: Dict[str, Type[PackageBase]] = {}

    def add(self, recipe: Type[PackageBase]) -> Type[PackageBase]:
        """Register a recipe class (usable as a decorator)."""
        if not (isinstance(recipe, type) and issubclass(recipe, PackageBase)):
            raise PackageError(f"not a PackageBase subclass: {recipe!r}")
        name = recipe.name()
        if name in self._recipes and self._recipes[name] is not recipe:
            raise PackageError(
                f"duplicate recipe {name!r} in repository {self.namespace!r}"
            )
        self._recipes[name] = recipe
        return recipe

    def remove(self, name: str) -> None:
        self._recipes.pop(name, None)

    def get(self, name: str) -> Optional[Type[PackageBase]]:
        return self._recipes.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._recipes

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._recipes))

    def __len__(self) -> int:
        return len(self._recipes)

    def __repr__(self) -> str:
        return f"Repository({self.namespace!r}, {len(self)} recipes)"


class RepoPath:
    """Ordered search path over repositories; earlier entries shadow later.

    The framework's default path is ``[local, builtin]`` so that site-local
    recipes win, exactly as described in the paper.
    """

    def __init__(self, repos: Optional[List[Repository]] = None):
        self.repos: List[Repository] = list(repos or [])

    def prepend(self, repo: Repository) -> None:
        self.repos.insert(0, repo)

    def append(self, repo: Repository) -> None:
        self.repos.append(repo)

    def get(self, name: str) -> Type[PackageBase]:
        for repo in self.repos:
            recipe = repo.get(name)
            if recipe is not None:
                return recipe
        raise UnknownPackageError(name, [r.namespace for r in self.repos])

    def exists(self, name: str) -> bool:
        return any(name in repo for repo in self.repos)

    def providing_repo(self, name: str) -> Optional[str]:
        for repo in self.repos:
            if name in repo:
                return repo.namespace
        return None

    def all_package_names(self) -> List[str]:
        names = set()
        for repo in self.repos:
            names.update(iter(repo))
        return sorted(names)

    def __repr__(self) -> str:
        return f"RepoPath({[r.namespace for r in self.repos]!r})"


#: The builtin repository, populated by importing :mod:`repro.pkgmgr.recipes`.
_BUILTIN: Optional[Repository] = None


def builtin_repo() -> Repository:
    """Return the builtin recipe repository, loading all recipe modules once."""
    global _BUILTIN
    if _BUILTIN is None:
        _BUILTIN = Repository("builtin")
        import repro.pkgmgr.recipes as recipes_pkg

        for modinfo in pkgutil.iter_modules(recipes_pkg.__path__):
            module = importlib.import_module(
                f"repro.pkgmgr.recipes.{modinfo.name}"
            )
            for attr in vars(module).values():
                if (
                    isinstance(attr, type)
                    and issubclass(attr, PackageBase)
                    and attr is not PackageBase
                    and attr.__module__ == module.__name__
                    and attr.versions_decl
                ):
                    _BUILTIN.add(attr)
    return _BUILTIN


def default_repo_path(extra: Optional[List[Repository]] = None) -> RepoPath:
    """The standard search path: any extra (local) repos, then builtin."""
    return RepoPath(list(extra or []) + [builtin_repo()])
