"""Recipes for the benchmark applications of the paper's three case studies.

* ``babelstream`` -- memory-bandwidth benchmark with one boolean variant per
  programming model (``+omp``, ``+cuda``, ``+std-data`` ...), mirroring how
  the paper requests models on the ReFrame command line
  (``-S spack_spec='babelstream%gcc@9.2.0 +omp'``).
* ``hpcg`` / ``hpcg-lfric`` -- the standard sparse CG benchmark and the
  Met Office LFRic-operator variant used in Section 3.2; the ``variant``
  option selects CSR / vendor-optimized / matrix-free implementations.
* ``hpgmg`` -- finite-volume full multigrid, whose concretized dependency
  set is Table 3 (``mpi`` + ``python`` build deps).
* ``stream`` -- classic McCalpin STREAM, kept as a baseline.
"""

from repro.pkgmgr.package import (
    PackageBase,
    conflicts,
    depends_on,
    variant,
    version,
)

__all__ = ["Babelstream", "Hpcg", "HpcgLfric", "Hpgmg", "Stream"]

#: Programming models BabelStream implements, with the library each needs.
BABELSTREAM_MODELS = (
    "omp",
    "kokkos",
    "cuda",
    "ocl",
    "std-data",
    "std-indices",
    "std-ranges",
    "tbb",
    "sycl",
    "acc",
)


class Babelstream(PackageBase):
    """Measure memory transfer rates to/from global device memory."""

    homepage = "https://github.com/UoB-HPC/BabelStream"

    version("5.0")
    version("4.0", preferred=True)
    version("3.4")

    for _model in BABELSTREAM_MODELS:
        variant(_model, default=False, description=f"Build the {_model} variant")
    del _model

    depends_on("cmake@3.13:", type="build")
    depends_on("kokkos", when="+kokkos")
    depends_on("cuda", when="+cuda")
    depends_on("opencl-icd-loader", when="+ocl")
    depends_on("intel-tbb", when="+tbb")
    # the std-* models use TBB as their parallel backend where available;
    # on aarch64 they build without it and fall back to serial execution
    # (the isambard-macs vs isambard-xci disparity in Section 3.1)
    depends_on("intel-tbb", when="+std-data target=x86_64")
    depends_on("intel-tbb", when="+std-indices target=x86_64")
    depends_on("intel-tbb", when="+std-ranges target=x86_64")
    depends_on("dpcpp", when="+sycl")

    conflicts("+cuda", when="device=cpu", msg="CUDA StreamModel needs a GPU")
    conflicts("+ocl", when="device=cpu vendor=marvell",
              msg="no OpenCL runtime on the ThunderX2 system")
    conflicts("+acc", when="%gcc@:9", msg="OpenACC needs gcc 10+ or nvhpc")
    # std-ranges requires a C++20 toolchain; GCC 9 cannot build it.
    conflicts("+std-ranges", when="%gcc@:9", msg="std::ranges requires C++20")

    def cmake_args(self):
        args = []
        for model in BABELSTREAM_MODELS:
            if self.spec.variants.get(model):
                args.append(f"-DMODEL={model}")
        return args

    def build_time_estimate(self) -> float:
        return 45.0


class Hpcg(PackageBase):
    """High Performance Conjugate Gradient benchmark (hpcg-benchmark.org)."""

    homepage = "https://www.hpcg-benchmark.org"

    version("3.1")
    variant(
        "implementation",
        default="original",
        values=("original", "intel-avx2", "matrix-free"),
        description="CSR reference, vendor-optimized binary, or matrix-free",
    )
    depends_on("mpi")
    depends_on("cmake@3.10:", type="build")
    depends_on("intel-oneapi-mkl", when="implementation=intel-avx2")
    conflicts(
        "implementation=intel-avx2",
        when="target=aarch64",
        msg="Intel MKL binaries only run on x86_64",
    )
    conflicts(
        "implementation=intel-avx2",
        when="vendor=amd",
        msg="the MKL HPCG binary refuses to run on non-Intel x86 (paper: N/A on Rome)",
    )

    def build_time_estimate(self) -> float:
        return 120.0


class HpcgLfric(PackageBase):
    """HPCG solving the symmetrised LFRic Helmholtz operator (Section 3.2)."""

    homepage = "https://github.com/ukri-excalibur/excalibur-tests"

    version("1.0")
    depends_on("mpi")
    depends_on("cmake@3.10:", type="build")

    def build_time_estimate(self) -> float:
        return 150.0


class Hpgmg(PackageBase):
    """HPGMG: finite-volume full-multigrid benchmark (LBNL)."""

    homepage = "https://bitbucket.org/hpgmg/hpgmg"
    build_system = "python"  # configure is a python script

    version("0.4")
    variant("fv", default=True, description="Build the finite-volume solver")
    variant("fe", default=False, description="Build the finite-element solver")
    depends_on("mpi")
    depends_on("python", type="build")

    def build_time_estimate(self) -> float:
        return 90.0


class OsuMicroBenchmarks(PackageBase):
    """OSU MPI microbenchmarks (latency, bandwidth, collectives)."""

    homepage = "https://mvapich.cse.ohio-state.edu/benchmarks/"
    build_system = "autotools"

    version("7.0.1")
    version("6.2")
    depends_on("mpi")

    def build_time_estimate(self) -> float:
        return 60.0


class Stream(PackageBase):
    """McCalpin STREAM: the original memory bandwidth benchmark."""

    homepage = "https://www.cs.virginia.edu/stream/"
    build_system = "makefile"

    version("5.10")
    variant("openmp", default=True, description="Thread the kernels with OpenMP")

    def build_time_estimate(self) -> float:
        return 5.0
