"""MPI library recipes -- all providers of the virtual package ``mpi``.

Table 3 of the paper reports the MPI implementation Spack concretized for
``hpgmg%gcc`` on each system: cray-mpich 8.1.23 (ARCHER2), mvapich 2.3.6
(COSMA8), openmpi 4.0.4 (CSD3), openmpi 4.0.3 (Isambard-MACS).  Those exact
versions are declared here and pinned per-system as externals by the
environment configs in :mod:`repro.runner.config`.
"""

from repro.pkgmgr.package import PackageBase, depends_on, provides, variant, version

__all__ = ["Openmpi", "Mvapich2", "CrayMpich", "IntelOneapiMpi", "Mpich"]


class Openmpi(PackageBase):
    """Open MPI: open-source MPI-4 implementation."""

    homepage = "https://www.open-mpi.org"
    build_system = "autotools"

    version("4.1.5")
    version("4.0.4")
    version("4.0.3")
    provides("mpi")
    variant("cuda", default=False, description="CUDA-aware transports")
    depends_on("cuda", when="+cuda")

    def build_time_estimate(self) -> float:
        return 900.0


class Mvapich2(PackageBase):
    """MVAPICH2: InfiniBand-optimized MPI (deployed on COSMA8)."""

    homepage = "https://mvapich.cse.ohio-state.edu"
    build_system = "autotools"

    version("2.3.7")
    version("2.3.6")
    provides("mpi")

    def build_time_estimate(self) -> float:
        return 800.0


class CrayMpich(PackageBase):
    """Cray MPICH: vendor MPI on HPE Cray EX systems (ARCHER2).

    Never built from source -- always a system external, as on the real
    machine where it lives behind ``PrgEnv``.
    """

    homepage = "https://www.hpe.com"
    build_system = "makefile"

    version("8.1.23")
    version("8.1.15")
    provides("mpi")


class IntelOneapiMpi(PackageBase):
    """Intel oneAPI MPI."""

    homepage = "https://www.intel.com/oneapi"
    build_system = "makefile"

    version("2021.9.0")
    provides("mpi")


class Mpich(PackageBase):
    """MPICH: reference MPI implementation."""

    homepage = "https://www.mpich.org"
    build_system = "autotools"

    version("4.1.1")
    version("3.4.3")
    provides("mpi")
