"""Performance-library recipes: MKL, TBB, CUDA, Kokkos, OpenCL, SYCL.

These are the backends/abstraction layers the BabelStream programming-model
survey (Figure 2) depends on: Kokkos builds over OpenMP or CUDA, the ISO
C++ ``std-*`` models need TBB on CPUs, CUDA/OpenCL need the toolkit, and
the Intel HPCG binary comes from MKL.
"""

from repro.pkgmgr.package import (
    PackageBase,
    conflicts,
    depends_on,
    provides,
    variant,
    version,
)

__all__ = [
    "IntelOneapiMkl",
    "IntelTbb",
    "Cuda",
    "Kokkos",
    "OpenclIcdLoader",
    "Dpcpp",
]


class IntelOneapiMkl(PackageBase):
    """Intel oneAPI Math Kernel Library (ships optimized HPCG binaries)."""

    homepage = "https://www.intel.com/oneapi"
    build_system = "makefile"

    version("2023.1.0")
    version("2022.2.0")
    variant("ilp64", default=False, description="64-bit integer interface")


class IntelTbb(PackageBase):
    """Intel Threading Building Blocks: task-parallel runtime.

    The paper notes TBB is unavailable on ThunderX2 ("Intel-TBB on
    Thunder"), making the ``tbb`` and multicore ``std-*`` BabelStream
    variants fail there; the conflict below encodes that knowledge
    (Principle 2).
    """

    homepage = "https://github.com/oneapi-src/oneTBB"

    version("2021.9.0")
    version("2020.3")
    conflicts(
        "target=aarch64",
        msg="Intel TBB is not supported on ThunderX2/aarch64 systems here",
    )


class Cuda(PackageBase):
    """NVIDIA CUDA toolkit."""

    homepage = "https://developer.nvidia.com/cuda-toolkit"
    build_system = "makefile"

    version("12.1")
    version("11.8")
    version("11.2")
    conflicts(
        "device=cpu",
        msg="CUDA requires an NVIDIA GPU device",
    )


class Kokkos(PackageBase):
    """Kokkos C++ performance-portability abstraction."""

    homepage = "https://kokkos.org"

    version("4.0.01")
    version("3.7.02")
    variant(
        "backend",
        default="openmp",
        values=("openmp", "cuda", "serial", "hip"),
        description="Execution backend",
    )
    depends_on("cuda@11:", when="backend=cuda")

    def cmake_args(self):
        backend = self.spec.variants.get("backend", "openmp")
        return [f"-DKokkos_ENABLE_{str(backend).upper()}=ON"]


class OpenclIcdLoader(PackageBase):
    """OpenCL installable-client-driver loader."""

    homepage = "https://github.com/KhronosGroup/OpenCL-ICD-Loader"

    version("2023.04.17")
    version("2022.09.30")
    provides("opencl")


class Dpcpp(PackageBase):
    """Intel's SYCL implementation (DPC++), part of oneAPI."""

    homepage = "https://www.intel.com/oneapi"
    build_system = "makefile"

    version("2023.1.0")
    provides("sycl")
