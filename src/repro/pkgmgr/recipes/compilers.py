"""Compiler package recipes.

Compilers are packages too (as in modern Spack): systems register the
installed ones as externals, and the concretizer resolves ``%gcc@11.2.0``
against these recipes.  The version sets cover every compiler version named
in the paper (GCC 9.2.0/10.3.0/11.x/12.1.0, oneAPI 2023.1.0, CCE on
ARCHER2, ...).
"""

from repro.pkgmgr.package import PackageBase, version, variant

__all__ = ["Gcc", "IntelOneapiCompilers", "Cce", "Nvhpc", "Aocc"]


class Gcc(PackageBase):
    """The GNU Compiler Collection."""

    homepage = "https://gcc.gnu.org"
    build_system = "autotools"

    version("12.1.0")
    version("11.2.0")
    version("11.1.0")
    version("10.3.0")
    version("9.2.0")
    variant("languages", default="c,c++,fortran",
            values=("c", "c++", "fortran", "go", "ada"), multi=True,
            description="Languages to build frontends for")

    def build_time_estimate(self) -> float:
        return 3600.0


class IntelOneapiCompilers(PackageBase):
    """Intel oneAPI compiler suite (icx/icpx/ifx)."""

    homepage = "https://www.intel.com/oneapi"
    build_system = "makefile"

    version("2023.1.0")
    version("2022.2.0")

    def build_time_estimate(self) -> float:
        return 600.0


class Cce(PackageBase):
    """Cray Compiling Environment, available on HPE Cray EX (ARCHER2)."""

    homepage = "https://www.hpe.com"
    build_system = "makefile"

    version("15.0.0")
    version("14.0.1")


class Nvhpc(PackageBase):
    """NVIDIA HPC SDK (nvc++, nvfortran, CUDA toolchain integration)."""

    homepage = "https://developer.nvidia.com/hpc-sdk"
    build_system = "makefile"

    version("23.3")
    version("22.9")


class Aocc(PackageBase):
    """AMD Optimizing C/C++ Compiler, tuned for EPYC (Rome/Milan)."""

    homepage = "https://www.amd.com/en/developer/aocc.html"
    build_system = "makefile"

    version("4.0.0")
    version("3.2.0")
