"""Builtin package recipes.

Every module in this package is auto-imported by
:func:`repro.pkgmgr.repository.builtin_repo`; any :class:`PackageBase`
subclass with at least one declared version defined at module level is
registered under its kebab-case name.

The recipe set covers everything the paper's three case studies concretize:
compilers (gcc, oneapi, cce, nvhpc, aocc), MPI libraries (openmpi, mvapich2,
cray-mpich, intel-mpi -- all providers of the virtual ``mpi``), tools
(cmake, python), performance libraries (intel-oneapi-mkl, intel-tbb, cuda,
kokkos, opencl), and the benchmarks themselves (babelstream, hpcg and its
variants, hpgmg, stream).
"""
