"""Build-tool and interpreter recipes (cmake, python, numactl).

Python versions include every interpreter Table 3 reports as a concretized
HPGMG build dependency: 3.10.12 (ARCHER2), 2.7.15 (COSMA8), 3.8.2 (CSD3),
3.7.5 (Isambard-MACS).
"""

from repro.pkgmgr.package import PackageBase, version, variant

__all__ = ["Cmake", "Python", "Numactl"]


class Cmake(PackageBase):
    """CMake build-system generator."""

    homepage = "https://cmake.org"
    build_system = "makefile"

    version("3.26.3")
    version("3.23.1")
    version("3.20.2")
    version("3.13.4")

    def build_time_estimate(self) -> float:
        return 300.0


class Python(PackageBase):
    """The Python interpreter (HPGMG uses it to generate its build)."""

    homepage = "https://www.python.org"
    build_system = "autotools"

    version("3.11.3")
    version("3.10.12")
    version("3.8.2")
    version("3.7.5")
    version("2.7.15", deprecated=True)
    variant("shared", default=True, description="Build libpython as shared")

    def build_time_estimate(self) -> float:
        return 600.0


class Numactl(PackageBase):
    """NUMA policy control library, used for affinity experiments."""

    homepage = "https://github.com/numactl/numactl"
    build_system = "autotools"

    version("2.0.16")
    version("2.0.14")
