"""Deterministic randomness for reproducible simulated measurements.

Every simulated timing in the framework draws its noise from a generator
seeded by *what is being measured* -- (system, partition, benchmark, rep) --
never from global state.  Identical invocations therefore produce
bit-identical perflogs, which is the strongest possible form of the
reproducibility the paper's principles aim at, and what the test suite
asserts end-to-end.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["stable_seed", "DeterministicRNG", "perturb"]


def stable_seed(*parts: object) -> int:
    """A 64-bit seed derived stably from string-able parts.

    Python's ``hash`` is salted per-process; sha256 is not.
    """
    blob = "\x1f".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "little")


class DeterministicRNG:
    """A numpy Generator seeded from identification parts."""

    def __init__(self, *parts: object):
        self.seed = stable_seed(*parts)
        self.generator = np.random.default_rng(self.seed)

    def lognormal_factor(self, sigma: float = 0.01) -> float:
        """A multiplicative noise factor centred on 1.

        Run-to-run variation of well-behaved HPC benchmarks is roughly
        lognormal with a ~1% coefficient of variation; jittery platforms
        pass a larger sigma.
        """
        return float(np.exp(self.generator.normal(0.0, sigma)))

    def uniform(self, lo: float, hi: float) -> float:
        return float(self.generator.uniform(lo, hi))


def perturb(value: float, sigma: float, *seed_parts: object) -> float:
    """Apply deterministic lognormal noise to a modelled quantity."""
    rng = DeterministicRNG(*seed_parts)
    return value * rng.lognormal_factor(sigma)
