"""Roofline timing model over a :class:`~repro.systems.hardware.NodeSpec`.

The model implements the standard two-ceiling roofline (Williams et al.)
with one refinement the paper's Figure 2 methodology depends on: *cache
capture*.  The paper sizes BabelStream arrays to ``2^29`` on Milan
precisely because its 512 MB of L3 would otherwise hold the ``2^25``
working set and report cache -- not memory -- bandwidth.  The model
reproduces that hazard: a working set fitting in the LLC is served at the
(much higher) cache bandwidth, so a benchmark that ignores the sizing rule
reports an inflated FOM, exactly the mistake Principle 1's efficiency
framing is designed to surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systems.hardware import NodeSpec

__all__ = ["KernelProfile", "RooflineModel"]


@dataclass(frozen=True)
class KernelProfile:
    """Resource footprint of one kernel execution.

    ``bytes_moved`` counts ideal DRAM traffic (reads + writes, no
    write-allocate) -- the STREAM convention, which the paper notes
    understates Read-For-Ownership traffic on some microarchitectures;
    ``rfo_writes_bytes`` carries the write traffic subject to RFO so the
    model can charge it when the platform lacks streaming stores.
    """

    name: str
    bytes_moved: float
    flops: float = 0.0
    working_set_bytes: float = 0.0
    rfo_writes_bytes: float = 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte; zero-traffic kernels are effectively infinite AI."""
        if self.bytes_moved <= 0:
            return float("inf")
        return self.flops / self.bytes_moved


class RooflineModel:
    """Predicts kernel execution time on a node.

    Parameters
    ----------
    node:
        Hardware description (the FOM device: CPU sockets or the GPU).
    charge_rfo:
        When True, write traffic in ``rfo_writes_bytes`` is doubled
        (read-for-ownership), modelling CPUs without non-temporal stores.
    """

    def __init__(self, node: NodeSpec, charge_rfo: bool = False):
        self.node = node
        self.charge_rfo = charge_rfo

    # -- effective ceilings ----------------------------------------------------
    def effective_bandwidth(
        self,
        efficiency: float = 1.0,
        working_set_bytes: float = float("inf"),
    ) -> float:
        """Sustainable GB/s for a working set, scaled by model efficiency.

        A working set within the LLC is served at the cache bandwidth
        (the Figure 2 array-sizing hazard); otherwise DRAM peak times the
        hardware's sustainable fraction.
        """
        mem = self.node.gpu.memory if self.node.gpu else self.node.memory
        if (
            self.node.llc_bytes > 0
            and working_set_bytes <= self.node.llc_bytes
            and self.node.gpu is None
        ):
            llc = self.node.processor.llc
            base = llc.bandwidth_gbs * self.node.sockets
        else:
            base = mem.peak_bandwidth_gbs * mem.stream_fraction
        return base * efficiency

    def effective_gflops(self, efficiency: float = 1.0) -> float:
        return self.node.peak_gflops * efficiency

    # -- timing -----------------------------------------------------------------
    def time_for(
        self,
        profile: KernelProfile,
        bandwidth_efficiency: float = 1.0,
        compute_efficiency: float = 1.0,
    ) -> float:
        """Seconds the kernel takes: the slower of the two ceilings."""
        bytes_moved = profile.bytes_moved
        if self.charge_rfo:
            bytes_moved += profile.rfo_writes_bytes
        bw = self.effective_bandwidth(
            bandwidth_efficiency, profile.working_set_bytes or bytes_moved
        )
        t_mem = bytes_moved / (bw * 1e9) if bytes_moved > 0 else 0.0
        gf = self.effective_gflops(compute_efficiency)
        t_cpu = profile.flops / (gf * 1e9) if profile.flops > 0 else 0.0
        return max(t_mem, t_cpu, 1e-9)

    def achieved_bandwidth_gbs(self, profile: KernelProfile, seconds: float) -> float:
        """GB/s the STREAM convention would report for this execution."""
        return profile.bytes_moved / seconds / 1e9

    def achieved_gflops(self, profile: KernelProfile, seconds: float) -> float:
        return profile.flops / seconds / 1e9

    def is_memory_bound(self, profile: KernelProfile) -> bool:
        """True below the ridge point of this node's roofline."""
        bw = self.effective_bandwidth(1.0, profile.working_set_bytes or float("inf"))
        ridge = self.node.peak_gflops / bw
        return profile.arithmetic_intensity < ridge
