"""System-state telemetry during benchmark runs (the paper's future work).

Section 4: "we are planning to add functionality to capture relevant
parameters of the system state during the runtime of the benchmarks,
such as network or filesystem usage levels or energy consumption."

This module implements that capture for the simulated platforms:

* a per-node **power model** (idle + bandwidth-proportional + compute-
  proportional draw, with published-TDP-scale constants per processor),
* sampled **utilisation traces** (memory bandwidth, network, filesystem)
  over the job's simulated runtime,
* an :class:`EnergyReport` with joules, average watts and the derived
  energy efficiency (FOM per watt) that procurement studies need.

Samples are deterministic (seeded by what-is-measured) like every other
simulated quantity, so telemetry is reproducible too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.machine.clock import DeterministicRNG
from repro.systems.hardware import NodeSpec

__all__ = ["PowerModel", "TelemetrySample", "TelemetryTrace", "EnergyReport",
           "capture_telemetry"]

#: idle watts per CPU socket / per GPU, roughly calibrated to the parts
#: in the study (Rome/Milan ~90 W idle/socket, Cascade Lake ~60, TX2 ~70,
#: V100 ~40 idle)
_IDLE_W = {
    "rome": 90.0, "milan": 95.0, "cascadelake": 60.0, "thunderx2": 70.0,
}
#: additional watts per socket at full memory-bandwidth utilisation
_DRAM_W = {
    "rome": 90.0, "milan": 90.0, "cascadelake": 80.0, "thunderx2": 75.0,
}
#: additional watts per socket at full compute utilisation
_COMPUTE_W = {
    "rome": 100.0, "milan": 95.0, "cascadelake": 85.0, "thunderx2": 60.0,
}
_GPU_IDLE_W = 40.0
_GPU_ACTIVE_W = 260.0  # V100 PCIe TDP 250 W; active delta above idle


class PowerModel:
    """Power draw of one node as a function of utilisation."""

    def __init__(self, node: NodeSpec):
        self.node = node

    def watts(self, mem_util: float, compute_util: float) -> float:
        """Node draw for given utilisations in [0, 1]."""
        mem_util = min(max(mem_util, 0.0), 1.0)
        compute_util = min(max(compute_util, 0.0), 1.0)
        march = self.node.processor.microarch
        sockets = self.node.sockets
        total = sockets * (
            _IDLE_W.get(march, 80.0)
            + mem_util * _DRAM_W.get(march, 85.0)
            + compute_util * _COMPUTE_W.get(march, 90.0)
        )
        if self.node.gpu is not None:
            activity = max(mem_util, compute_util)
            total += (
                self.node.gpus_per_node or 1
            ) * (_GPU_IDLE_W + activity * _GPU_ACTIVE_W)
        return total

    @property
    def idle_watts(self) -> float:
        return self.watts(0.0, 0.0)


@dataclass(frozen=True)
class TelemetrySample:
    """One sampling instant of the node/system state."""

    time_s: float
    mem_bandwidth_util: float
    network_util: float
    filesystem_util: float
    watts: float


@dataclass
class TelemetryTrace:
    """Sampled system state over one job's runtime on one node."""

    samples: List[TelemetrySample] = field(default_factory=list)
    interval_s: float = 1.0

    @property
    def duration_s(self) -> float:
        return self.samples[-1].time_s if self.samples else 0.0

    def mean(self, attr: str) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([getattr(s, attr) for s in self.samples]))

    def peak(self, attr: str) -> float:
        if not self.samples:
            return 0.0
        return float(np.max([getattr(s, attr) for s in self.samples]))

    def joules(self) -> float:
        """Trapezoidal energy integral over the trace."""
        if len(self.samples) < 2:
            return (
                self.samples[0].watts * self.interval_s if self.samples else 0.0
            )
        t = np.array([s.time_s for s in self.samples])
        w = np.array([s.watts for s in self.samples])
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(w, t))


@dataclass
class EnergyReport:
    """What Principle 6 post-processing sees of a run's energy."""

    joules: float
    mean_watts: float
    duration_s: float
    nodes: int
    mean_mem_util: float
    mean_network_util: float
    mean_filesystem_util: float

    def fom_per_watt(self, fom: float) -> float:
        if self.mean_watts <= 0:
            raise ValueError("mean power must be positive")
        return fom / self.mean_watts

    def as_dict(self) -> Dict[str, float]:
        return {
            "joules": self.joules,
            "mean_watts": self.mean_watts,
            "duration_s": self.duration_s,
            "nodes": self.nodes,
            "mean_mem_util": self.mean_mem_util,
            "mean_network_util": self.mean_network_util,
            "mean_filesystem_util": self.mean_filesystem_util,
        }


def capture_telemetry(
    node: NodeSpec,
    duration_s: float,
    mem_util: float,
    compute_util: float = 0.2,
    comm_fraction: float = 0.05,
    num_nodes: int = 1,
    seed_context: str = "",
    interval_s: float = 1.0,
    max_samples: int = 600,
) -> "tuple[TelemetryTrace, EnergyReport]":
    """Sample the simulated system state over a job's runtime.

    ``mem_util``/``compute_util`` are the job's sustained utilisations
    (from the machine model); ``comm_fraction`` of the runtime shows up
    as network activity.  Sampling wiggle is deterministic per context.
    """
    duration_s = max(duration_s, interval_s)
    n = int(min(max(duration_s / interval_s, 2), max_samples))
    times = np.linspace(0.0, duration_s, n)
    power = PowerModel(node)
    samples = []
    for i, t in enumerate(times):
        rng = DeterministicRNG("telemetry", seed_context, i)
        wiggle = rng.lognormal_factor(0.05)
        m = min(mem_util * wiggle, 1.0)
        c = min(compute_util * wiggle, 1.0)
        net = min(comm_fraction * (num_nodes > 1) * wiggle * 4, 1.0)
        fs = min(0.02 * wiggle, 1.0)  # perflog writes are tiny
        samples.append(
            TelemetrySample(
                time_s=float(t),
                mem_bandwidth_util=m,
                network_util=float(net),
                filesystem_util=float(fs),
                watts=power.watts(m, c),
            )
        )
    trace = TelemetryTrace(samples=samples, interval_s=interval_s)
    report = EnergyReport(
        joules=trace.joules() * num_nodes,
        mean_watts=trace.mean("watts") * num_nodes,
        duration_s=duration_s,
        nodes=num_nodes,
        mean_mem_util=trace.mean("mem_bandwidth_util"),
        mean_network_util=trace.mean("network_util"),
        mean_filesystem_util=trace.mean("filesystem_util"),
    )
    return trace, report
