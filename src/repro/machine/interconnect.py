"""Inter-node network models for multi-node (MPI) benchmark runs.

Section 3.3 of the paper runs HPGMG-FV in an identical 8-task configuration
on four systems and finds that "specifics of the platform can impact the
performance of a benchmark significantly beyond changes in the underlying
architecture": two Cascade Lake systems land at 126.1 and 30.6 MDOF/s.
The interconnect (plus MPI library maturity) is the dominant such
specific, so the machine model carries one per system:

* ARCHER2 -- HPE Slingshot 10, excellent latency, tuned cray-mpich;
* COSMA8 -- Mellanox HDR200 InfiniBand with mvapich2;
* CSD3 -- Mellanox HDR200, well-tuned OpenMPI;
* Isambard XCI -- Cray Aries;
* Isambard MACS -- a small comparison testbed on EDR InfiniBand with a
  stock OpenMPI: high effective latency and modest bandwidth, which is
  what drags its HPGMG numbers far below CSD3's identical-ISA nodes;
* Noctua2 -- HDR200.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["InterconnectModel", "INTERCONNECTS"]


@dataclass(frozen=True)
class InterconnectModel:
    """A simple LogP-flavoured network model.

    ``efficiency`` folds in MPI-library maturity and system software tuning
    (progress threads, collective algorithms); it scales the *computation*
    throughput of communication-synchronised phases, standing in for all
    the platform specifics the paper observes but does not decompose.
    """

    name: str
    latency_us: float
    bandwidth_gbs: float
    efficiency: float = 1.0

    def transfer_seconds(self, message_bytes: float) -> float:
        """Point-to-point time for one message (alpha-beta model)."""
        return self.latency_us * 1e-6 + message_bytes / (self.bandwidth_gbs * 1e9)

    def allreduce_seconds(self, message_bytes: float, ranks: int) -> float:
        """Recursive-doubling allreduce estimate."""
        if ranks <= 1:
            return 0.0
        import math

        rounds = math.ceil(math.log2(ranks))
        return rounds * self.transfer_seconds(message_bytes)

    def halo_exchange_seconds(
        self, face_bytes: float, neighbours: int = 6
    ) -> float:
        """One halo exchange: neighbour messages overlap imperfectly."""
        overlap = 0.6  # fraction of neighbour traffic hidden by overlap
        per_msg = self.transfer_seconds(face_bytes)
        return per_msg * (1 + (neighbours - 1) * (1 - overlap))


INTERCONNECTS: Dict[str, InterconnectModel] = {
    "archer2": InterconnectModel("slingshot10", 1.7, 12.5, efficiency=0.95),
    "cosma8": InterconnectModel("hdr200-mvapich", 1.9, 25.0, efficiency=0.88),
    "csd3": InterconnectModel("hdr200-openmpi", 1.5, 25.0, efficiency=0.97),
    "isambard": InterconnectModel("aries", 2.2, 14.0, efficiency=0.80),
    "isambard-macs": InterconnectModel("edr-testbed", 6.5, 12.5, efficiency=0.55),
    "noctua2": InterconnectModel("hdr200", 1.6, 25.0, efficiency=0.92),
}
