"""Programming-model efficiency database for the BabelStream survey.

Figure 2 of the paper is a matrix of (programming model x platform)
efficiencies with three qualitative regimes the model reproduces:

* **ok** -- the model sustains a large fraction of the platform's stream
  bandwidth (CUDA/OpenCL "close to the peak maximum" on the V100; OpenMP
  working everywhere, with "better utilisation ... with Intel and AMD CPUs"
  than on ThunderX2),
* **degraded** -- the model runs but far below potential: ``std-ranges``
  "only executes in a single thread" because its multicore version is a
  work in progress, and "some systems do not support using Intel TBB for
  configuring multicore execution" (the paderborn-milan vs
  isambard-macs:cascadelake disparity),
* **unsupported** -- the combination does not run at all and Figure 2
  shows a white box with ``*`` (CUDA on CPUs, TBB on ThunderX2).

The factors below are calibration constants standing in for the measured
behaviour of real runtimes; they multiply the *hardware's* sustainable
stream fraction, so reported efficiency = stream_fraction x factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.systems.hardware import NodeSpec

__all__ = [
    "ModelEfficiency",
    "ProgrammingModelDB",
    "UnsupportedModelError",
    "default_model_db",
    "PROGRAMMING_MODELS",
]

#: Every programming model BabelStream implements (Figure 2 rows).
PROGRAMMING_MODELS = (
    "omp",
    "kokkos",
    "cuda",
    "ocl",
    "std-data",
    "std-indices",
    "std-ranges",
    "tbb",
    "sycl",
    "acc",
)


class UnsupportedModelError(RuntimeError):
    """The (model, platform) combination cannot run -- a Figure 2 ``*`` box."""

    def __init__(self, model: str, platform: str, reason: str):
        super().__init__(f"{model} unsupported on {platform}: {reason}")
        self.model = model
        self.platform = platform
        self.reason = reason


@dataclass(frozen=True)
class ModelEfficiency:
    """Efficiency entry: fraction of sustainable stream bandwidth achieved."""

    factor: float
    status: str = "ok"  # "ok" | "degraded"
    note: str = ""


# (model, microarch) -> entry.  Microarchs: volta, cascadelake, rome, milan,
# thunderx2.  Missing combination => unsupported (a '*' box).
_TABLE: Dict[Tuple[str, str], ModelEfficiency] = {
    # -- OpenMP: works on every device in the study --------------------------
    ("omp", "cascadelake"): ModelEfficiency(0.93),
    ("omp", "rome"): ModelEfficiency(0.92),
    ("omp", "milan"): ModelEfficiency(0.93),
    ("omp", "thunderx2"): ModelEfficiency(0.78, note="weaker utilisation on TX2"),
    ("omp", "volta"): ModelEfficiency(0.90, note="target offload"),
    # -- Kokkos (abstraction over OpenMP / CUDA) ------------------------------
    ("kokkos", "cascadelake"): ModelEfficiency(0.88),
    ("kokkos", "rome"): ModelEfficiency(0.87),
    ("kokkos", "milan"): ModelEfficiency(0.88),
    ("kokkos", "thunderx2"): ModelEfficiency(0.72),
    ("kokkos", "volta"): ModelEfficiency(0.95),
    # -- CUDA / OpenCL: GPU native, near peak on the V100 ----------------------
    ("cuda", "volta"): ModelEfficiency(0.99, note="close to peak"),
    ("ocl", "volta"): ModelEfficiency(0.985, note="close to peak"),
    ("ocl", "cascadelake"): ModelEfficiency(0.80, note="Intel CPU OpenCL runtime"),
    # -- ISO C++ parallel algorithms ------------------------------------------
    ("std-data", "cascadelake"): ModelEfficiency(0.88),
    ("std-data", "rome"): ModelEfficiency(0.86),
    ("std-data", "milan"): ModelEfficiency(0.87),
    ("std-data", "thunderx2"): ModelEfficiency(
        0.09, "degraded", "no TBB backend: serial execution"
    ),
    ("std-indices", "cascadelake"): ModelEfficiency(0.87),
    ("std-indices", "rome"): ModelEfficiency(0.85),
    ("std-indices", "milan"): ModelEfficiency(0.86),
    ("std-indices", "thunderx2"): ModelEfficiency(
        0.09, "degraded", "no TBB backend: serial execution"
    ),
    # std-ranges multicore "is a work in progress, and it only executes in
    # a single thread" -- efficiency collapses to one core's bandwidth share
    ("std-ranges", "cascadelake"): ModelEfficiency(
        0.075, "degraded", "single-threaded"
    ),
    ("std-ranges", "rome"): ModelEfficiency(0.055, "degraded", "single-threaded"),
    ("std-ranges", "milan"): ModelEfficiency(0.058, "degraded", "single-threaded"),
    ("std-ranges", "thunderx2"): ModelEfficiency(
        0.042, "degraded", "single-threaded"
    ),
    # -- TBB: fine on Intel, degraded multicore config on the AMD systems ------
    ("tbb", "cascadelake"): ModelEfficiency(0.86),
    ("tbb", "rome"): ModelEfficiency(0.52, "degraded", "TBB multicore config unsupported"),
    ("tbb", "milan"): ModelEfficiency(
        0.50, "degraded", "TBB multicore config unsupported (paderborn disparity)"
    ),
    # -- SYCL (DPC++): x86 CPUs only here ---------------------------------------
    ("sycl", "cascadelake"): ModelEfficiency(0.84),
    ("sycl", "rome"): ModelEfficiency(0.79),
    ("sycl", "milan"): ModelEfficiency(0.80),
    # -- OpenACC: first-class on NVIDIA, weak CPU fallback -----------------------
    ("acc", "volta"): ModelEfficiency(0.94),
    ("acc", "cascadelake"): ModelEfficiency(0.45, "degraded", "gcc CPU fallback"),
    ("acc", "rome"): ModelEfficiency(0.44, "degraded", "gcc CPU fallback"),
    ("acc", "milan"): ModelEfficiency(0.45, "degraded", "gcc CPU fallback"),
}

_UNSUPPORTED_REASONS: Dict[Tuple[str, str], str] = {
    ("cuda", "cascadelake"): "CUDA requires an NVIDIA device",
    ("cuda", "rome"): "CUDA requires an NVIDIA device",
    ("cuda", "milan"): "CUDA requires an NVIDIA device",
    ("cuda", "thunderx2"): "CUDA requires an NVIDIA device",
    ("tbb", "thunderx2"): "Intel TBB unavailable on aarch64",
    ("tbb", "volta"): "TBB is a CPU programming model",
    ("ocl", "thunderx2"): "no OpenCL runtime installed",
    ("ocl", "rome"): "no OpenCL CPU runtime on this system",
    ("ocl", "milan"): "no OpenCL CPU runtime on this system",
    ("sycl", "thunderx2"): "DPC++ does not target aarch64 here",
    ("sycl", "volta"): "no SYCL CUDA plugin on this system",
    ("std-data", "volta"): "nvhpc stdpar not configured on this system",
    ("std-indices", "volta"): "nvhpc stdpar not configured on this system",
    ("std-ranges", "volta"): "nvhpc stdpar not configured on this system",
    ("acc", "thunderx2"): "no OpenACC compiler on this system",
}

#: Small compiler personality adjustments (multiplicative), keyed by
#: (model, compiler name, cpu vendor).  The paper compares gcc and oneAPI
#: OpenMP; oneAPI's OpenMP runtime edges out gcc on Intel sockets and trails
#: slightly on AMD.
_COMPILER_ADJUST: Dict[Tuple[str, str, str], float] = {
    ("omp", "intel-oneapi-compilers", "intel"): 1.03,
    ("omp", "intel-oneapi-compilers", "amd"): 0.97,
    ("omp", "gcc", "intel"): 1.00,
    ("omp", "gcc", "amd"): 1.00,
    ("omp", "cce", "marvell"): 1.04,
    ("std-data", "intel-oneapi-compilers", "intel"): 1.02,
    ("std-indices", "intel-oneapi-compilers", "intel"): 1.02,
}


class ProgrammingModelDB:
    """Lookup of programming-model efficiency on a platform."""

    def __init__(
        self,
        table: Optional[Dict[Tuple[str, str], ModelEfficiency]] = None,
        unsupported: Optional[Dict[Tuple[str, str], str]] = None,
        compiler_adjust: Optional[Dict[Tuple[str, str, str], float]] = None,
    ):
        self.table = dict(table if table is not None else _TABLE)
        self.unsupported = dict(
            unsupported if unsupported is not None else _UNSUPPORTED_REASONS
        )
        self.compiler_adjust = dict(
            compiler_adjust if compiler_adjust is not None else _COMPILER_ADJUST
        )

    def platform_key(self, node: NodeSpec) -> str:
        if node.gpu is not None:
            return node.gpu.microarch
        return node.processor.microarch

    def supported(self, model: str, node: NodeSpec) -> bool:
        return (model, self.platform_key(node)) in self.table

    def efficiency(
        self, model: str, node: NodeSpec, compiler: str = "gcc"
    ) -> ModelEfficiency:
        """Entry for (model, platform, compiler); raises if unsupported."""
        if model not in PROGRAMMING_MODELS:
            raise ValueError(f"unknown programming model {model!r}")
        key = (model, self.platform_key(node))
        if key not in self.table:
            reason = self.unsupported.get(key, "combination not available")
            raise UnsupportedModelError(model, key[1], reason)
        entry = self.table[key]
        adj = self.compiler_adjust.get(
            (model, compiler, node.arch_vendor), 1.0
        )
        if adj == 1.0:
            return entry
        return ModelEfficiency(entry.factor * adj, entry.status, entry.note)


_DEFAULT_DB: Optional[ProgrammingModelDB] = None


def default_model_db() -> ProgrammingModelDB:
    global _DEFAULT_DB
    if _DEFAULT_DB is None:
        _DEFAULT_DB = ProgrammingModelDB()
    return _DEFAULT_DB
