"""The machine execution model: how fast code runs on a simulated platform.

The paper measures real codes on real hardware; we have one laptop.  The
substitution (DESIGN.md section 3) is a *roofline* execution model: a
kernel is characterised by the bytes it moves and the flops it does, a
platform by its peak memory bandwidth, peak flop rate and cache capacity
(from :mod:`repro.systems`), and a programming model/compiler by an
efficiency profile.  Simulated wall-clock is then

    time = max(bytes / effective_bandwidth, flops / effective_flops)

with deterministic, seeded noise standing in for run-to-run variation.
The kernels themselves still execute for real (numpy) so correctness is
checked; only the *timing* is modelled.
"""

from repro.machine.clock import DeterministicRNG, stable_seed, perturb
from repro.machine.roofline import KernelProfile, RooflineModel
from repro.machine.progmodel import (
    ModelEfficiency,
    ProgrammingModelDB,
    UnsupportedModelError,
    default_model_db,
)
from repro.machine.interconnect import InterconnectModel, INTERCONNECTS
from repro.machine.telemetry import (
    EnergyReport,
    PowerModel,
    TelemetryTrace,
    capture_telemetry,
)

__all__ = [
    "DeterministicRNG",
    "stable_seed",
    "perturb",
    "KernelProfile",
    "RooflineModel",
    "ModelEfficiency",
    "ProgrammingModelDB",
    "UnsupportedModelError",
    "default_model_db",
    "InterconnectModel",
    "INTERCONNECTS",
    "EnergyReport",
    "PowerModel",
    "TelemetryTrace",
    "capture_telemetry",
]
