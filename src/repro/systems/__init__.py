"""Simulated HPC systems: hardware registry for the paper's platforms.

The paper benchmarks on seven UK/DE platforms (Table 5): Isambard
(ThunderX2), Isambard-MACS (Cascade Lake + V100), COSMA8 (Rome), ARCHER2
(Rome), CSD3 (Cascade Lake), and Noctua2 (Milan).  This subpackage records
their hardware ground truth -- cores, sockets, clocks, cache sizes, peak
memory bandwidth (Table 1) and peak FLOP rates -- and builds the
per-system package-manager environments whose concretizations reproduce
Table 3.
"""

from repro.systems.hardware import (
    CacheSpec,
    GpuSpec,
    MemorySpec,
    NodeSpec,
    ProcessorSpec,
)
from repro.systems.registry import (
    SYSTEMS,
    SystemDescription,
    all_system_names,
    get_system,
    system_environment,
)

__all__ = [
    "CacheSpec",
    "GpuSpec",
    "MemorySpec",
    "NodeSpec",
    "ProcessorSpec",
    "SYSTEMS",
    "SystemDescription",
    "all_system_names",
    "get_system",
    "system_environment",
]
