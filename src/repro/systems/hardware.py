"""Hardware descriptions: processors, memories, caches, nodes.

These dataclasses carry the *theoretical peak* numbers that Principle 1
turns raw FOMs into efficiencies with: Figure 2 divides measured Triad
GB/s by :attr:`MemorySpec.peak_bandwidth_gbs` from Table 1.

All bandwidths are in GB/s (decimal, as vendors and the paper quote them),
capacities in bytes, clocks in GHz, flop rates in GFLOP/s (double
precision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "CacheSpec",
    "MemorySpec",
    "ProcessorSpec",
    "GpuSpec",
    "NodeSpec",
]

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class CacheSpec:
    """One cache level (typically the LLC is what benchmarking cares about).

    The paper's array-sizing rule ("the array size should be set such that
    it forces the data to go beyond the L3 cache") reads
    :attr:`size_bytes` of the last level.
    """

    level: int
    size_bytes: int
    per_socket: bool = True
    bandwidth_gbs: float = 1000.0  # sustained BW when data fits this level

    def total_bytes(self, sockets: int) -> int:
        return self.size_bytes * (sockets if self.per_socket else 1)


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory subsystem of a node or device."""

    peak_bandwidth_gbs: float  # theoretical peak, the Figure 2 denominator
    capacity_bytes: int = 256 * GiB
    channels: int = 8
    technology: str = "DDR4"

    #: Fraction of theoretical peak a perfectly-tuned STREAM reaches.  Real
    #: DRAM never sustains peak (refresh, page misses, RFO traffic); 80-88%
    #: is typical for CPUs, ~93% for HBM2.  This is hardware ground truth,
    #: not a programming-model property (those live in repro.machine).
    stream_fraction: float = 0.82


@dataclass(frozen=True)
class ProcessorSpec:
    """A CPU socket type (Table 5 rows)."""

    vendor: str  # "Intel", "AMD", "Marvell"
    model: str  # "Xeon Gold 6230 (Cascade Lake)"
    microarch: str  # "cascadelake", "rome", "milan", "thunderx2"
    isa_family: str  # "x86_64" or "aarch64"
    cores_per_socket: int
    clock_ghz: float
    flops_per_cycle: int  # per-core DP flops/cycle at the widest vector unit
    caches: Tuple[CacheSpec, ...] = ()
    smt: int = 1

    @property
    def peak_gflops_per_socket(self) -> float:
        return self.cores_per_socket * self.clock_ghz * self.flops_per_cycle

    @property
    def llc(self) -> Optional[CacheSpec]:
        return max(self.caches, key=lambda c: c.level) if self.caches else None


@dataclass(frozen=True)
class GpuSpec:
    """A GPU device type (Table 1's V100 row)."""

    vendor: str
    model: str
    microarch: str  # "volta"
    compute_units: int
    clock_ghz: float
    peak_gflops: float  # DP
    memory: MemorySpec = field(
        default_factory=lambda: MemorySpec(
            peak_bandwidth_gbs=900.0,
            capacity_bytes=16 * GiB,
            channels=4,
            technology="HBM2",
            stream_fraction=0.93,
        )
    )

    @property
    def isa_family(self) -> str:
        return "gpu"


@dataclass(frozen=True)
class NodeSpec:
    """A full compute node: sockets of a processor (or a host + GPU).

    For GPU partitions the FOM-relevant device is the GPU; the host CPU
    only launches kernels, so :attr:`gpu` being set switches the machine
    model to the device's roofline.
    """

    processor: ProcessorSpec
    sockets: int = 2
    memory: MemorySpec = field(
        default_factory=lambda: MemorySpec(peak_bandwidth_gbs=200.0)
    )
    gpu: Optional[GpuSpec] = None
    gpus_per_node: int = 0

    @property
    def total_cores(self) -> int:
        return self.processor.cores_per_socket * self.sockets

    @property
    def peak_bandwidth_gbs(self) -> float:
        """Peak memory bandwidth of the FOM-relevant device."""
        if self.gpu is not None:
            return self.gpu.memory.peak_bandwidth_gbs
        return self.memory.peak_bandwidth_gbs

    @property
    def peak_gflops(self) -> float:
        if self.gpu is not None:
            return self.gpu.peak_gflops
        return self.processor.peak_gflops_per_socket * self.sockets

    @property
    def llc_bytes(self) -> int:
        """Total last-level cache the Figure 2 array-sizing rule checks."""
        if self.gpu is not None:
            return 6 * MiB  # V100 L2
        llc = self.processor.llc
        return llc.total_bytes(self.sockets) if llc else 0

    @property
    def device(self) -> str:
        return "gpu" if self.gpu is not None else "cpu"

    @property
    def arch_target(self) -> str:
        if self.gpu is not None:
            return self.gpu.microarch
        return self.processor.isa_family

    @property
    def arch_vendor(self) -> str:
        if self.gpu is not None:
            return self.gpu.vendor.lower()
        return self.processor.vendor.lower()
