"""The system registry: every platform used in the paper.

Each :class:`SystemDescription` bundles

* partitions of :class:`~repro.systems.hardware.NodeSpec` hardware,
* the scheduler type (SLURM/PBS) and its quirks (ARCHER2 needs a
  ``--qos``, most systems an account -- the appendix's "Accounting varies
  between HPC systems"),
* a factory for the package-manager :class:`~repro.pkgmgr.environment.Environment`
  (compilers installed, externals, MPI preference), from which the paper's
  Table 3 concretizations fall out.

Hardware numbers come straight from Tables 1 and 5:

=============  ==========================  =============  ==================
System         Processor                   Cores          Peak mem BW (GB/s)
=============  ==========================  =============  ==================
Isambard       ThunderX2 @ 2.5 GHz         2 x 32         288
Isambard-MACS  Xeon Gold 6230 @ 2.1 GHz    2 x 20         2 x 140.784 = 282
Isambard-MACS  NVIDIA V100 PCIe 16 GB      80 SMs         900
COSMA8         EPYC 7H12 (Rome) @ 2.6      2 x 64         2 x 204.8
ARCHER2        EPYC 7742 (Rome) @ 2.25     2 x 64         2 x 204.8
CSD3           Xeon Platinum 8276 @ 2.2    2 x 28         2 x 140.784
Noctua2        EPYC 7763 (Milan) @ 2.45    2 x 64         2 x 204.8
=============  ==========================  =============  ==================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.pkgmgr.compilers import Compiler, CompilerRegistry
from repro.pkgmgr.environment import Environment, ExternalPackage
from repro.systems.hardware import (
    CacheSpec,
    GpuSpec,
    MemorySpec,
    MiB,
    GiB,
    NodeSpec,
    ProcessorSpec,
)

__all__ = [
    "SystemDescription",
    "PartitionDescription",
    "SYSTEMS",
    "get_system",
    "all_system_names",
    "system_environment",
    "UnknownSystemError",
]


class UnknownSystemError(LookupError):
    """Raised for a system name not in the registry."""


# --------------------------------------------------------------------------
# processor catalogue
# --------------------------------------------------------------------------

CASCADE_LAKE_6230 = ProcessorSpec(
    vendor="Intel",
    model="Xeon Gold 6230 (Cascade Lake)",
    microarch="cascadelake",
    isa_family="x86_64",
    cores_per_socket=20,
    clock_ghz=2.1,
    flops_per_cycle=32,  # AVX-512, 2 FMA units
    caches=(CacheSpec(3, int(27.5 * MiB)),),
    smt=2,
)

CASCADE_LAKE_8276 = ProcessorSpec(
    vendor="Intel",
    model="Xeon Platinum 8276 (Cascade Lake)",
    microarch="cascadelake",
    isa_family="x86_64",
    cores_per_socket=28,
    clock_ghz=2.2,
    flops_per_cycle=32,
    caches=(CacheSpec(3, int(38.5 * MiB)),),
    smt=2,
)

THUNDERX2 = ProcessorSpec(
    vendor="Marvell",
    model="ThunderX2 CN9980",
    microarch="thunderx2",
    isa_family="aarch64",
    cores_per_socket=32,
    clock_ghz=2.5,
    flops_per_cycle=8,  # 2x 128-bit NEON FMA
    caches=(CacheSpec(3, 32 * MiB),),
    smt=4,
)

EPYC_ROME_7H12 = ProcessorSpec(
    vendor="AMD",
    model="EPYC 7H12 (Rome)",
    microarch="rome",
    isa_family="x86_64",
    cores_per_socket=64,
    clock_ghz=2.6,
    flops_per_cycle=16,  # AVX2, 2 FMA units
    caches=(CacheSpec(3, 256 * MiB),),
    smt=2,
)

EPYC_ROME_7742 = ProcessorSpec(
    vendor="AMD",
    model="EPYC 7742 (Rome)",
    microarch="rome",
    isa_family="x86_64",
    cores_per_socket=64,
    clock_ghz=2.25,
    flops_per_cycle=16,
    caches=(CacheSpec(3, 256 * MiB),),
    smt=2,
)

EPYC_MILAN_7763 = ProcessorSpec(
    vendor="AMD",
    model="EPYC 7763 (Milan)",
    microarch="milan",
    isa_family="x86_64",
    cores_per_socket=64,
    clock_ghz=2.45,
    flops_per_cycle=16,
    caches=(CacheSpec(3, 256 * MiB),),
    smt=2,
)

V100 = GpuSpec(
    vendor="NVIDIA",
    model="Tesla V100 PCIe 16 GB",
    microarch="volta",
    compute_units=80,
    clock_ghz=1.38,
    peak_gflops=7000.0,
)

# memory subsystems (peak figures from Table 1)
MEM_CASCADE_LAKE = MemorySpec(
    peak_bandwidth_gbs=2 * 140.784, channels=6, technology="DDR4-2933",
    capacity_bytes=192 * GiB, stream_fraction=0.80,
)
MEM_THUNDERX2 = MemorySpec(
    peak_bandwidth_gbs=288.0, channels=8, technology="DDR4-2400",
    capacity_bytes=256 * GiB, stream_fraction=0.84,
)
MEM_ROME = MemorySpec(
    peak_bandwidth_gbs=2 * 204.8, channels=8, technology="DDR4-3200",
    capacity_bytes=256 * GiB, stream_fraction=0.82,
)
MEM_MILAN = MemorySpec(
    peak_bandwidth_gbs=2 * 204.8, channels=8, technology="DDR4-3200",
    capacity_bytes=256 * GiB, stream_fraction=0.85,
)


# --------------------------------------------------------------------------
# system descriptions
# --------------------------------------------------------------------------

@dataclass
class PartitionDescription:
    """One homogeneous set of nodes within a system."""

    name: str
    node: NodeSpec
    num_nodes: int = 8
    scheduler: str = "slurm"
    launcher: str = "mpirun"
    access_options: Tuple[str, ...] = ()
    environs: Tuple[str, ...] = ("default",)


@dataclass
class SystemDescription:
    """A whole facility as the framework sees it."""

    name: str
    full_name: str
    tier: str
    partitions: Dict[str, PartitionDescription]
    scheduler: str = "slurm"
    requires_account: bool = True
    requires_qos: bool = False
    #: the project/budget code jobs are billed to when the user passes no
    #: -J'--account=...'.  Per-system knowledge belongs *here* (Principle
    #: 5: "capture all the steps"), never hardcoded in the pipeline; a
    #: system that requires an account but configures no default fails
    #: admission control cleanly instead.
    default_account: Optional[str] = None
    #: likewise for the default QoS (ARCHER2's '--qos=standard')
    default_qos: Optional[str] = None
    hostname_patterns: Tuple[str, ...] = ()
    env_factory: Optional[Callable[[], Environment]] = None

    def partition(self, name: Optional[str] = None) -> PartitionDescription:
        if name is None:
            return next(iter(self.partitions.values()))
        if name not in self.partitions:
            raise UnknownSystemError(
                f"system {self.name!r} has no partition {name!r} "
                f"(has: {', '.join(self.partitions)})"
            )
        return self.partitions[name]

    @property
    def default_partition(self) -> PartitionDescription:
        return self.partition(None)


def _node(processor: ProcessorSpec, memory: MemorySpec, **kw) -> NodeSpec:
    return NodeSpec(processor=processor, sockets=2, memory=memory, **kw)


def _env_archer2() -> Environment:
    env = Environment(
        "archer2",
        compilers=CompilerRegistry(
            [
                Compiler("gcc", "11.2.0", modules=["PrgEnv-gnu"]),
                Compiler("cce", "15.0.0", modules=["PrgEnv-cray"]),
                Compiler("gcc", "10.3.0"),
            ]
        ),
        externals=[
            ExternalPackage("cray-mpich@8.1.23", modules=["cray-mpich/8.1.23"]),
            ExternalPackage("python@3.10.12", modules=["cray-python/3.10.12"]),
            ExternalPackage("cmake@3.23.1"),
        ],
        preferences={"mpi": "cray-mpich@8.1.23"},
        arch={"target": "x86_64", "device": "cpu", "vendor": "amd"},
    )
    return env


def _env_cosma8() -> Environment:
    return Environment(
        "cosma8",
        compilers=CompilerRegistry(
            [
                Compiler("gcc", "11.1.0"),
                Compiler("gcc", "9.2.0"),
                Compiler("intel-oneapi-compilers", "2023.1.0"),
            ]
        ),
        externals=[
            ExternalPackage("mvapich2@2.3.6", modules=["mvapich2/2.3.6"]),
            ExternalPackage("python@2.7.15"),  # old system python, as in Table 3
            ExternalPackage("cmake@3.20.2"),
        ],
        preferences={"mpi": "mvapich2@2.3.6"},
        arch={"target": "x86_64", "device": "cpu", "vendor": "amd"},
    )


def _env_csd3() -> Environment:
    return Environment(
        "csd3",
        compilers=CompilerRegistry(
            [
                Compiler("gcc", "11.2.0"),
                Compiler("intel-oneapi-compilers", "2023.1.0"),
            ]
        ),
        externals=[
            ExternalPackage("openmpi@4.0.4", modules=["openmpi/4.0.4"]),
            ExternalPackage("python@3.8.2"),
            ExternalPackage("cmake@3.23.1"),
            ExternalPackage("intel-oneapi-mkl@2023.1.0"),
            ExternalPackage("intel-tbb@2021.9.0"),
        ],
        preferences={"mpi": "openmpi@4.0.4"},
        arch={"target": "x86_64", "device": "cpu", "vendor": "intel"},
    )


def _env_isambard_macs() -> Environment:
    return Environment(
        "isambard-macs",
        compilers=CompilerRegistry(
            [
                # gcc 9.2.0 first: the paper pins it for the Volta builds
                # because "the build system has conflicts with newer versions"
                Compiler("gcc", "9.2.0"),
                Compiler("gcc", "10.3.0"),
                Compiler("gcc", "12.1.0"),
                Compiler("intel-oneapi-compilers", "2023.1.0"),
            ]
        ),
        externals=[
            ExternalPackage("openmpi@4.0.3", modules=["openmpi/4.0.3"]),
            ExternalPackage("python@3.7.5"),
            ExternalPackage("cmake@3.13.4"),
            ExternalPackage("cuda@11.2", modules=["cuda/11.2"]),
            ExternalPackage("intel-oneapi-mkl@2023.1.0"),
            ExternalPackage("intel-tbb@2020.3"),
        ],
        preferences={"mpi": "openmpi@4.0.3"},
        arch={"target": "x86_64", "device": "cpu", "vendor": "intel"},
    )


def _env_isambard_xci() -> Environment:
    return Environment(
        "isambard",
        compilers=CompilerRegistry(
            [
                Compiler("gcc", "10.3.0"),
                Compiler("gcc", "12.1.0"),
                Compiler("cce", "14.0.1"),
            ]
        ),
        externals=[
            ExternalPackage("openmpi@4.0.3"),
            ExternalPackage("python@3.7.5"),
            ExternalPackage("cmake@3.20.2"),
        ],
        preferences={"mpi": "openmpi@4.0.3"},
        arch={"target": "aarch64", "device": "cpu", "vendor": "marvell"},
    )


def _env_noctua2() -> Environment:
    return Environment(
        "noctua2",
        compilers=CompilerRegistry(
            [
                Compiler("gcc", "12.1.0"),
                Compiler("gcc", "10.3.0"),
                Compiler("intel-oneapi-compilers", "2023.1.0"),
            ]
        ),
        externals=[
            ExternalPackage("openmpi@4.1.5"),
            ExternalPackage("python@3.10.12"),
            ExternalPackage("cmake@3.26.3"),
            ExternalPackage("intel-tbb@2021.9.0"),
            ExternalPackage("intel-oneapi-mkl@2023.1.0"),
        ],
        preferences={"mpi": "openmpi@4.1.5"},
        arch={"target": "x86_64", "device": "cpu", "vendor": "amd"},
    )


SYSTEMS: Dict[str, SystemDescription] = {
    "archer2": SystemDescription(
        name="archer2",
        full_name="ARCHER2 (UK National Supercomputing Service)",
        tier="Tier-1",
        partitions={
            "compute": PartitionDescription(
                name="compute",
                node=_node(EPYC_ROME_7742, MEM_ROME),
                num_nodes=1024,
                scheduler="slurm",
                launcher="srun",
                access_options=("--partition=standard", "--qos=standard"),
            )
        },
        requires_qos=True,
        default_account="z19",
        default_qos="standard",
        hostname_patterns=("ln0*", "uan0*"),
        env_factory=_env_archer2,
    ),
    "cosma8": SystemDescription(
        name="cosma8",
        full_name="COSMA8 (DiRAC Durham)",
        tier="Tier-1 (DiRAC)",
        partitions={
            "compute": PartitionDescription(
                name="compute",
                node=_node(EPYC_ROME_7H12, MEM_ROME),
                num_nodes=360,
                scheduler="slurm",
                launcher="mpirun",
                access_options=("--partition=cosma8",),
            )
        },
        default_account="dp004",
        hostname_patterns=("login8*",),
        env_factory=_env_cosma8,
    ),
    "csd3": SystemDescription(
        name="csd3",
        full_name="CSD3 (Cambridge Service for Data Driven Discovery)",
        tier="Tier-2",
        partitions={
            "cascadelake": PartitionDescription(
                name="cascadelake",
                node=_node(CASCADE_LAKE_8276, MEM_CASCADE_LAKE),
                num_nodes=672,
                scheduler="slurm",
                launcher="mpirun",
                access_options=("--partition=cclake",),
            )
        },
        default_account="support-cpu",
        hostname_patterns=("login-e-*",),
        env_factory=_env_csd3,
    ),
    "isambard": SystemDescription(
        name="isambard",
        full_name="Isambard 2 XCI (GW4 Tier-2, Marvell ThunderX2)",
        tier="Tier-2",
        partitions={
            "compute": PartitionDescription(
                name="compute",
                node=_node(THUNDERX2, MEM_THUNDERX2),
                num_nodes=328,
                scheduler="pbs",
                launcher="aprun",
            )
        },
        default_account="br-proj",
        hostname_patterns=("xcil0*",),
        env_factory=_env_isambard_xci,
    ),
    "isambard-macs": SystemDescription(
        name="isambard-macs",
        full_name="Isambard Multi-Architecture Comparison System",
        tier="Tier-2",
        partitions={
            "cascadelake": PartitionDescription(
                name="cascadelake",
                node=_node(CASCADE_LAKE_6230, MEM_CASCADE_LAKE),
                num_nodes=4,
                scheduler="pbs",
                launcher="mpirun",
                access_options=("-q clxq",),
            ),
            "volta": PartitionDescription(
                name="volta",
                node=NodeSpec(
                    processor=CASCADE_LAKE_6230,
                    sockets=2,
                    memory=MEM_CASCADE_LAKE,
                    gpu=V100,
                    gpus_per_node=1,
                ),
                num_nodes=2,
                scheduler="pbs",
                launcher="mpirun",
                access_options=("-q voltaq",),
            ),
        },
        default_account="br-proj",
        hostname_patterns=("login-0*",),
        env_factory=_env_isambard_macs,
    ),
    "noctua2": SystemDescription(
        name="noctua2",
        full_name="Noctua 2 (NHR Center PC2, Paderborn)",
        tier="NHR",
        partitions={
            "milan": PartitionDescription(
                name="milan",
                node=_node(EPYC_MILAN_7763, MEM_MILAN),
                num_nodes=990,
                scheduler="slurm",
                launcher="srun",
                access_options=("--partition=normal",),
            )
        },
        default_account="hpc-prf-repro",
        hostname_patterns=("n2login*",),
        env_factory=_env_noctua2,
    ),
}


def all_system_names() -> List[str]:
    return sorted(SYSTEMS)


def get_system(name: str) -> SystemDescription:
    """Look up ``'system'`` or ``'system:partition'`` (partition validated)."""
    sysname, _, part = name.partition(":")
    if sysname not in SYSTEMS:
        raise UnknownSystemError(
            f"unknown system {sysname!r}; known: {', '.join(all_system_names())}"
        )
    system = SYSTEMS[sysname]
    if part:
        system.partition(part)  # raises if invalid
    return system


def system_environment(name: str) -> Environment:
    """The package environment of a system, honouring the GPU partition.

    ``'isambard-macs:volta'`` returns the MACS environment with the arch
    facts switched to the V100 so GPU-only conflicts resolve correctly.
    A system without an ``env_factory`` gets :meth:`Environment.basic`
    (the paper: unknown systems get a basic environment, no packages).
    """
    sysname, _, part = name.partition(":")
    system = get_system(sysname)
    if system.env_factory is None:
        return Environment.basic(sysname)
    env = system.env_factory()
    if part:
        node = system.partition(part).node
        env.arch = {
            "target": node.arch_target,
            "device": node.device,
            "vendor": node.arch_vendor,
        }
    return env
